//! The 3-dimensional model of a blocked matrix multiplication (§2.2).
//!
//! `C = A × B` with `A` of `I × K` blocks and `B` of `K × J` blocks spans a
//! volume of `I × J × K` voxels; voxel `v(i,j,k)` is the block product
//! `A[i,k] · B[k,j]` contributing to `C[i,j]` (Eq. 1, Fig. 2).

use distme_matrix::{MatrixError, MatrixMeta};

/// A distributed matrix-multiplication instance: operand descriptors plus
/// the derived output descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatmulProblem {
    /// Left operand (the `ik`-plane).
    pub a: MatrixMeta,
    /// Right operand (the `kj`-plane).
    pub b: MatrixMeta,
    /// Output (the `ij`-plane), sized with the paper's worst-case density
    /// estimate (§2.2.2).
    pub c: MatrixMeta,
    /// Sampling mask over the `ij`-plane for SDDMM problems: only the
    /// mask's stored pattern is computed and `c` inherits the mask's shape
    /// and sparsity. `None` for ordinary multiplications.
    pub mask: Option<MatrixMeta>,
}

impl MatmulProblem {
    /// Builds a problem from operand descriptors.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when the inner dimensions
    /// or block sizes disagree.
    pub fn new(a: MatrixMeta, b: MatrixMeta) -> Result<Self, MatrixError> {
        if a.cols != b.rows || a.block_size != b.block_size {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_problem",
                lhs: (a.rows, a.cols),
                rhs: (b.rows, b.cols),
            });
        }
        Ok(MatmulProblem {
            a,
            b,
            c: a.multiply_meta(&b),
            mask: None,
        })
    }

    /// Builds an SDDMM problem: `C = mask ⊙ (A · B)` where only the mask's
    /// stored pattern is evaluated. The output descriptor takes the mask's
    /// shape and sparsity (the result lives in the mask's CSR pattern), and
    /// the per-voxel FLOP estimate is scaled by the mask density.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] when the operands
    /// disagree, or when the mask is not `a.rows × b.cols` at the operands'
    /// block size.
    pub fn sddmm(a: MatrixMeta, b: MatrixMeta, mask: MatrixMeta) -> Result<Self, MatrixError> {
        let mut p = Self::new(a, b)?;
        if mask.rows != a.rows || mask.cols != b.cols || mask.block_size != a.block_size {
            return Err(MatrixError::DimensionMismatch {
                op: "sddmm_problem",
                lhs: (a.rows, b.cols),
                rhs: (mask.rows, mask.cols),
            });
        }
        p.c = MatrixMeta::sparse(mask.rows, mask.cols, mask.sparsity)
            .with_block_size(mask.block_size);
        p.mask = Some(mask);
        Ok(p)
    }

    /// Block-grid dimensions `(I, J, K)` of the voxel model.
    pub fn dims(&self) -> (u32, u32, u32) {
        (
            self.a.block_rows(),
            self.b.block_cols(),
            self.a.block_cols(),
        )
    }

    /// Total voxels, `I · J · K`.
    pub fn voxels(&self) -> u64 {
        let (i, j, k) = self.dims();
        i as u64 * j as u64 * k as u64
    }

    /// FLOPs of one *average* voxel: `2 · (I̅ · J̅ · K̅)` where the bars are
    /// average block extents (edge blocks of skinny matrices are narrower
    /// than the nominal block size), scaled by the effective density the
    /// local kernel actually visits — a sparse-stored operand skips its
    /// zeros, a dense-stored one does not (even at 0.5 sparsity, `dgemm`
    /// performs every multiply).
    pub fn flops_per_voxel(&self) -> f64 {
        let (i, j, k) = self.dims();
        let mi = self.a.rows as f64 / i as f64;
        let mj = self.b.cols as f64 / j as f64;
        let mk = self.a.cols as f64 / k as f64;
        2.0 * mi * mj * mk * self.effective_density()
    }

    /// Product of the operands' kernel-visible densities.
    pub fn effective_density(&self) -> f64 {
        let da = if self.a.is_dense_storage() {
            1.0
        } else {
            self.a.sparsity
        };
        let db = if self.b.is_dense_storage() {
            1.0
        } else {
            self.b.sparsity
        };
        // An SDDMM kernel only visits the mask's stored entries, so the
        // sampled fraction scales the work regardless of operand storage.
        let dm = self.mask.map_or(1.0, |m| m.sparsity);
        da * db * dm
    }

    /// Total FLOPs of the multiplication — identical for every method ("the
    /// total number of low-level multiplication operations is the same
    /// regardless of a method used", §1).
    pub fn total_flops(&self) -> f64 {
        self.voxels() as f64 * self.flops_per_voxel()
    }

    /// Whether either operand is stored sparse (selects csrmm-style
    /// kernels). SDDMM problems always run a sparse kernel: the output is
    /// gathered into the mask's CSR pattern.
    pub fn uses_sparse_kernels(&self) -> bool {
        !self.a.is_dense_storage() || !self.b.is_dense_storage() || self.mask.is_some()
    }

    /// Average serialized bytes of one block of `A` — exact for uniformly
    /// skinny matrices (every block narrower than the nominal size) and a
    /// faithful mean under ragged edges.
    pub fn a_block_bytes(&self) -> u64 {
        avg_block_bytes(&self.a)
    }

    /// Average serialized bytes of one block of `B`.
    pub fn b_block_bytes(&self) -> u64 {
        avg_block_bytes(&self.b)
    }

    /// Average serialized bytes of one block of `C` (worst-case density).
    pub fn c_block_bytes(&self) -> u64 {
        avg_block_bytes(&self.c)
    }

    /// Convenience constructor for the paper's synthetic workloads:
    /// `I×K · K×J` dense matrices in elements, default 1000-blocks.
    ///
    /// # Panics
    /// Panics when the implied problem is inconsistent (impossible here by
    /// construction).
    pub fn dense(rows_a: u64, common: u64, cols_b: u64) -> Self {
        Self::new(
            MatrixMeta::dense(rows_a, common),
            MatrixMeta::dense(common, cols_b),
        )
        .expect("consistent by construction")
    }
}

/// Mean bytes per block: total storage over block count.
fn avg_block_bytes(m: &MatrixMeta) -> u64 {
    (m.total_bytes() / m.num_blocks().max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_voxels() {
        // Fig. 3(a): A is 4x8 blocks, B is 8x6 blocks (block size 1 for
        // directness).
        let a = MatrixMeta::dense(4, 8).with_block_size(1);
        let b = MatrixMeta::dense(8, 6).with_block_size(1);
        let p = MatmulProblem::new(a, b).unwrap();
        assert_eq!(p.dims(), (4, 6, 8));
        assert_eq!(p.voxels(), 192);
        assert_eq!(p.c.rows, 4);
        assert_eq!(p.c.cols, 6);
    }

    #[test]
    fn mismatched_inner_dim_rejected() {
        let a = MatrixMeta::dense(4, 8);
        let b = MatrixMeta::dense(9, 6);
        assert!(MatmulProblem::new(a, b).is_err());
    }

    #[test]
    fn mismatched_block_size_rejected() {
        let a = MatrixMeta::dense(4000, 8000);
        let b = MatrixMeta::dense(8000, 6000).with_block_size(500);
        assert!(MatmulProblem::new(a, b).is_err());
    }

    #[test]
    fn paper_scale_flops() {
        // 100K^3 dense: 2e15 flops.
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        assert_eq!(p.dims(), (100, 100, 100));
        assert!((p.total_flops() - 2.0e15).abs() / 2.0e15 < 1e-12);
    }

    #[test]
    fn dense_stored_half_sparse_does_full_flops() {
        let a = MatrixMeta::sparse(10_000, 10_000, 0.5); // dense storage
        let b = MatrixMeta::sparse(10_000, 10_000, 0.5);
        let p = MatmulProblem::new(a, b).unwrap();
        assert_eq!(p.effective_density(), 1.0);
        assert!(!p.uses_sparse_kernels());
    }

    #[test]
    fn sparse_stored_operand_scales_flops() {
        let a = MatrixMeta::sparse(500_000, 1_000_000, 0.0001);
        let b = MatrixMeta::dense(1_000_000, 1_000);
        let p = MatmulProblem::new(a, b).unwrap();
        assert!((p.effective_density() - 0.0001).abs() < 1e-15);
        assert!(p.uses_sparse_kernels());
    }

    #[test]
    fn skinny_matrices_use_true_block_sizes() {
        // W is 1.8M x 200: every block is 1000 x 200 = 1.6 MB, not 8 MB.
        let p = MatmulProblem::dense(1_800_000, 200, 1_800_000);
        assert_eq!(p.a_block_bytes(), 1_600_000);
        // And flops per voxel reflect the thin common dimension.
        let expect = 2.0 * 1000.0 * 1000.0 * 200.0;
        assert!((p.flops_per_voxel() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn output_is_worst_case_dense() {
        let a = MatrixMeta::sparse(500_000, 1_000_000, 0.0001);
        let b = MatrixMeta::dense(1_000_000, 1_000);
        let p = MatmulProblem::new(a, b).unwrap();
        assert!(p.c.sparsity > 0.99, "C sized as (almost) fully dense");
    }
}
