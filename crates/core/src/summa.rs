//! SUMMA on an MPI process grid — the ScaLAPACK / SciDB model (§6.5, §7).
//!
//! SUMMA keeps `C` stationary on a `Pr × Pc` process grid and loops over
//! the common dimension in panels: each round broadcasts an A-panel along
//! process rows and a B-panel along process columns, then rank-updates the
//! local `C`. In CuboidMM terms it is `(1, Q, R)`-like partitioning (§7).
//!
//! Two behaviours of §6.5 are modelled explicitly:
//!
//! * **whole-array local storage** — "they easily fail for large-scale
//!   matrix multiplication since they keep all blocks of a local matrix as
//!   a single array in main memory": per-process memory is
//!   `(|A| + |B| + |C|) / P` plus panel buffers, with no out-of-core path,
//!   so the `N × 1K × N` rows of Table 5 O.O.M.;
//! * **per-round collectives** — "the communication overhead in ScaLAPACK
//!   becomes severe when dealing with a common large dimension": one
//!   blocking broadcast pair per panel, so `K`-panel workloads pay
//!   `K · round_latency` of un-overlapped latency.

use crate::problem::MatmulProblem;
use distme_cluster::{ClusterConfig, JobError, JobStats, Phase, PhaseStats};

/// Which HPC system profile to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpcSystem {
    /// ScaLAPACK 2.0 with MPICH over 10 GbE (§6.1). Built against
    /// reference BLAS, consistent with Table 5's absolute times.
    ScaLapack,
    /// SciDB 18.1, which wraps ScaLAPACK and pays an extra repartition of
    /// the inputs into ScaLAPACK's block-cyclic layout, holding both copies
    /// ("SciDB may have extra communication overhead before matrix
    /// multiplication since the input matrices should be repartitioned",
    /// §7).
    SciDb,
}

impl HpcSystem {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HpcSystem::ScaLapack => "ScaLAPACK",
            HpcSystem::SciDb => "SciDB",
        }
    }
}

/// Calibration of the MPI-side execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaConfig {
    /// Sustained per-node GEMM throughput, FLOP/s. Reference-BLAS builds
    /// (the common way ScaLAPACK is compiled from source) sustain
    /// ~15 GFLOP/s on the paper's 6-core nodes — the rate Table 5's 50K³
    /// row implies.
    pub node_flops_per_sec: f64,
    /// Blocking collective latency per SUMMA round (MPI_Bcast of a panel
    /// over 90 ranks on TCP/10 GbE).
    pub round_latency_secs: f64,
    /// Fixed startup: `mpirun` launch, grid setup, input scatter.
    pub startup_secs: f64,
}

impl Default for SummaConfig {
    fn default() -> Self {
        SummaConfig {
            node_flops_per_sec: 15.0e9,
            round_latency_secs: 0.5,
            startup_secs: 20.0,
        }
    }
}

/// Simulates one `C = A × B` under the SUMMA model.
///
/// # Errors
/// Returns [`JobError::OutOfMemory`] when a process's whole-array local
/// share exceeds the per-process budget (θt, matching the ten processes
/// per node of §6.5).
pub fn simulate(
    cluster: &ClusterConfig,
    problem: &MatmulProblem,
    system: HpcSystem,
    summa: &SummaConfig,
) -> Result<JobStats, JobError> {
    let procs = cluster.total_slots() as u64;
    // Near-square process grid, e.g. 90 => 9 x 10.
    let (pr, pc) = process_grid(procs);

    let a = problem.a.total_bytes();
    let b = problem.b.total_bytes();
    let c = problem.c.total_bytes();

    // Whole-array local storage; SciDB keeps the pre-repartition copy too.
    let local = (a + b + c) / procs;
    let panels = (a / (pr * problem.a.block_cols() as u64).max(1))
        + (b / (pc * problem.b.block_rows() as u64).max(1));
    let factor = match system {
        HpcSystem::ScaLapack => 1,
        HpcSystem::SciDb => 2,
    };
    let mem_per_proc = local * factor + panels;
    if mem_per_proc > cluster.task_mem_bytes {
        return Err(JobError::OutOfMemory {
            task: 0,
            needed: mem_per_proc,
            budget: cluster.task_mem_bytes,
        });
    }

    // Load + scatter inputs (SciDB repartitions: one extra network pass).
    let disk_rate = cluster.disk_bytes_per_sec * cluster.nodes as f64;
    let net_rate = cluster.net_bytes_per_sec * cluster.nodes as f64;
    let mut load_secs = (a + b) as f64 / disk_rate + (a + b) as f64 / net_rate;
    let mut extra_comm = 0u64;
    if system == HpcSystem::SciDb {
        extra_comm = a + b;
        load_secs += extra_comm as f64 / net_rate;
    }

    // SUMMA rounds: one panel per block column of A.
    let rounds = problem.dims().2 as u64;
    let comm_bytes = pc * a + pr * b;
    let comm_secs = comm_bytes as f64 / net_rate;
    let flops_secs = problem.total_flops() / (summa.node_flops_per_sec * cluster.nodes as f64);
    let latency_secs = rounds as f64 * summa.round_latency_secs;
    let mut elapsed = summa.startup_secs + load_secs + comm_secs + flops_secs + latency_secs;
    if system == HpcSystem::SciDb {
        // SciDB wraps ScaLAPACK behind its array query processor: AFL
        // parsing, chunk-to-block-cyclic marshalling in both directions,
        // and result re-chunking add a small multiplicative overhead on
        // top of the extra repartition — "ScaLAPACK shows a better
        // performance than SciDB" in every Table 5 row.
        elapsed = elapsed * 1.06 + 10.0;
    }

    if elapsed > cluster.timeout_secs {
        return Err(JobError::Timeout {
            elapsed_secs: elapsed,
            limit_secs: cluster.timeout_secs,
        });
    }

    let mut stats = JobStats {
        elapsed_secs: elapsed,
        peak_task_mem_bytes: mem_per_proc,
        intermediate_bytes: extra_comm,
        gpu_utilization: None,
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: summa.startup_secs + load_secs,
        shuffle_bytes: extra_comm,
        cross_node_bytes: extra_comm,
        broadcast_bytes: 0,
        tasks: procs as usize,
    };
    *stats.phase_mut(Phase::LocalMult) = PhaseStats {
        secs: comm_secs + flops_secs + latency_secs,
        shuffle_bytes: comm_bytes,
        cross_node_bytes: comm_bytes,
        broadcast_bytes: 0,
        tasks: procs as usize,
    };
    Ok(stats)
}

/// Near-square factorization `pr × pc = procs` with `pr ≤ pc`.
fn process_grid(procs: u64) -> (u64, u64) {
    let mut pr = (procs as f64).sqrt() as u64;
    while pr > 1 && !procs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), procs / pr.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn process_grid_is_near_square() {
        assert_eq!(process_grid(90), (9, 10));
        assert_eq!(process_grid(16), (4, 4));
        assert_eq!(process_grid(7), (1, 7));
    }

    #[test]
    fn small_square_matmul_runs() {
        // Table 5 row 1: 10K^3 succeeds on both systems.
        let p = MatmulProblem::dense(10_000, 10_000, 10_000);
        for sys in [HpcSystem::ScaLapack, HpcSystem::SciDb] {
            let stats = simulate(&paper(), &p, sys, &SummaConfig::default()).unwrap();
            assert!(stats.elapsed_secs > 0.0 && stats.elapsed_secs < 100.0);
        }
    }

    #[test]
    fn scidb_is_slower_than_scalapack() {
        // Table 5: "In all experiments, ScaLAPACK shows a better
        // performance than SciDB."
        let p = MatmulProblem::dense(50_000, 50_000, 50_000);
        let sl = simulate(&paper(), &p, HpcSystem::ScaLapack, &SummaConfig::default()).unwrap();
        let sd = simulate(&paper(), &p, HpcSystem::SciDb, &SummaConfig::default()).unwrap();
        assert!(sd.elapsed_secs > sl.elapsed_secs);
    }

    #[test]
    fn two_large_dimensions_oom_at_500k() {
        // Table 5 last row: N x 1K x N at N = 500K — |C| = 2 TB dense can't
        // live as whole local arrays.
        let p = MatmulProblem::dense(500_000, 1_000, 500_000);
        for sys in [HpcSystem::ScaLapack, HpcSystem::SciDb] {
            let err = simulate(&paper(), &p, sys, &SummaConfig::default()).unwrap_err();
            assert_eq!(err.annotation(), "O.O.M.", "{}", sys.name());
        }
    }

    #[test]
    fn scidb_ooms_on_common_large_dimension_5m() {
        // Table 5: 5K x 5M x 5K — SciDB O.O.M. (double storage), ScaLAPACK
        // survives but is slow (or times out under the 4000 s budget used
        // for matmul; the paper reports 70 minutes with no timeout).
        let p = MatmulProblem::dense(5_000, 5_000_000, 5_000);
        let err = simulate(&paper(), &p, HpcSystem::SciDb, &SummaConfig::default()).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
        let no_timeout = paper().with_timeout(f64::MAX);
        let sl = simulate(
            &no_timeout,
            &p,
            HpcSystem::ScaLapack,
            &SummaConfig::default(),
        )
        .unwrap();
        // The paper measures 70 minutes; the round-latency term should put
        // us in the same decade (thousands of seconds).
        assert!(
            sl.elapsed_secs > 1_000.0 && sl.elapsed_secs < 10_000.0,
            "got {:.0}s",
            sl.elapsed_secs
        );
    }

    #[test]
    fn round_latency_dominates_common_large_dimension() {
        // §6.5's claim: the K-panel loop is what hurts ScaLAPACK.
        let p = MatmulProblem::dense(5_000, 1_000_000, 5_000);
        let cfg = paper().with_timeout(f64::MAX);
        let base = SummaConfig::default();
        let fast_net = SummaConfig {
            round_latency_secs: 0.0,
            ..base
        };
        let with_latency = simulate(&cfg, &p, HpcSystem::ScaLapack, &base).unwrap();
        let without = simulate(&cfg, &p, HpcSystem::ScaLapack, &fast_net).unwrap();
        assert!(with_latency.elapsed_secs > 2.0 * without.elapsed_secs);
    }

    #[test]
    fn deterministic() {
        let p = MatmulProblem::dense(20_000, 20_000, 20_000);
        let a = simulate(&paper(), &p, HpcSystem::ScaLapack, &SummaConfig::default()).unwrap();
        let b = simulate(&paper(), &p, HpcSystem::ScaLapack, &SummaConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
