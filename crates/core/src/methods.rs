//! Distributed matrix-multiplication methods.
//!
//! §3.1: "CuboidMM is a generalization of the existing three methods, BMM,
//! CPMM, and RMM, and so, can perform matrix multiplication like either
//! BMM, CPMM, or RMM by changing the parameters P, Q, and R." Each method
//! resolves to a [`ResolvedMethod`]: a cuboid grid plus the flags that
//! distinguish the originals (BMM broadcasts B; RMM hashes voxels with no
//! communication sharing; CRMM pays an extra shuffle to form logical
//! blocks).

use crate::cuboid::CuboidSpec;
use crate::optimizer::{self, OptimizerConfig};
use crate::problem::MatmulProblem;

/// Method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulMethod {
    /// Broadcast MM (§2.2.1): row-partition A, broadcast B, `T = I` tasks.
    Bmm,
    /// Cross-product MM (§2.2.2): column-partition A, row-partition B,
    /// outer products, `T = K` tasks.
    Cpmm,
    /// Replication-based MM (§2.2.3): voxel-level replication with hash
    /// partitioning; the paper's best setting `T = I·J`.
    Rmm,
    /// CuboidMM with explicit parameters.
    Cuboid(CuboidSpec),
    /// CuboidMM with `(P*, Q*, R*)` from the §3.2 optimizer.
    CuboidAuto,
    /// Marlin's CRMM (§7): RMM over larger *cubic* logical blocks formed by
    /// an extra shuffle.
    Crmm,
    /// Sampled dense–dense MM: row-partition the dense left factor,
    /// broadcast the dense right factor, and gather each task's output into
    /// the row-stripe of a stationary CSR mask (the mask never moves — it
    /// is sharded by rows exactly like A, so sampling is node-local).
    Sddmm,
    /// Sparse × dense MM with the sparse operand sharded by rows and the
    /// dense factor's row panels rotated through the shuffle (the
    /// shift-based schedule of distributed SpMM; communication-wise a
    /// row-partitioned cuboid whose B panels repartition instead of
    /// broadcast).
    SpmmShift,
}

impl MulMethod {
    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            MulMethod::Bmm => "BMM",
            MulMethod::Cpmm => "CPMM",
            MulMethod::Rmm => "RMM",
            MulMethod::Cuboid(_) => "CuboidMM",
            MulMethod::CuboidAuto => "CuboidMM",
            MulMethod::Crmm => "CRMM",
            MulMethod::Sddmm => "SDDMM",
            MulMethod::SpmmShift => "SpMM-shift",
        }
    }
}

/// A method resolved against a concrete problem: everything the executors
/// need to build the three-step pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedMethod {
    /// Which method this came from.
    pub method: MulMethod,
    /// The cuboid grid shaping communication and computation.
    pub spec: CuboidSpec,
    /// Local-multiplication task count. Equal to the number of non-empty
    /// cuboids, except for RMM/CRMM where voxels are *hash-grouped* into
    /// this many tasks.
    pub tasks: u64,
    /// B is distributed by torrent broadcast instead of shuffle (BMM).
    pub broadcast_b: bool,
    /// Voxels are hashed to tasks with no consecutive-voxel communication
    /// sharing (RMM/CRMM): every voxel fetches its own A and B copies.
    pub voxel_hash: bool,
    /// Extra bytes shuffled before repartition (CRMM's logical-block
    /// formation: one full pass over A and B).
    pub pre_shuffle_bytes: u64,
    /// Whether a local-mult task holds its *entire* intermediate-C output
    /// resident (Table 2's `|C|` term for CPMM). DistME streams output
    /// blocks into the shuffle as they are produced, so this is false by
    /// default; the SystemML/MatFast profiles set it — which is exactly
    /// why MatFast's GNMF O.O.M.s at factor dimensions ≥ 500 (Fig. 8(d))
    /// while DistME does not.
    pub output_resident: bool,
    /// Serialized-size overhead of the system's shuffle format relative to
    /// DistME's SparkSQL-style columnar codec (§5: DistME "exploits the
    /// data serialization ... of SparkSQL to reduce the amount of shuffled
    /// data"). 1.0 for DistME; the legacy profiles use Java-serialized
    /// block records at ~1.6x.
    pub ser_overhead: f64,
    /// Whether the planner may keep an operator on the CPU when the GPU's
    /// estimated time (PCI-E + kernels) is worse (§5's CPU-or-GPU physical
    /// plans). The GPU ports the paper grafted onto SystemML/MatFast run
    /// every multiplication on the device unconditionally.
    pub gpu_cost_based: bool,
}

impl ResolvedMethod {
    /// Marks this resolution as holding task outputs resident (legacy
    /// SystemML/MatFast execution semantics).
    pub fn with_resident_output(mut self) -> Self {
        self.output_resident = true;
        self
    }

    /// Sets the serialized-size overhead factor (builder style).
    pub fn with_ser_overhead(mut self, factor: f64) -> Self {
        self.ser_overhead = factor;
        self
    }

    /// Forces every operator onto the GPU when one is present (builder
    /// style) — legacy GPU-port semantics.
    pub fn with_unconditional_gpu(mut self) -> Self {
        self.gpu_cost_based = false;
        self
    }

    /// Resolves `method` for `problem` under the optimizer inputs.
    ///
    /// Never fails: when the CuboidMM optimizer finds no feasible
    /// parameters, the minimum-memory spec `(I, J, K)` is returned and the
    /// executor reports the O.O.M. (matching how the real systems fail at
    /// run time rather than plan time).
    pub fn resolve(method: MulMethod, problem: &MatmulProblem, cfg: &OptimizerConfig) -> Self {
        let (i, j, k) = problem.dims();
        match method {
            MulMethod::Bmm => ResolvedMethod {
                method,
                spec: CuboidSpec::new(i, 1, 1),
                tasks: i as u64,
                broadcast_b: true,
                voxel_hash: false,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            MulMethod::Cpmm => ResolvedMethod {
                method,
                spec: CuboidSpec::new(1, 1, k),
                tasks: k as u64,
                broadcast_b: false,
                voxel_hash: false,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            MulMethod::Rmm => ResolvedMethod {
                method,
                spec: CuboidSpec::new(i, j, k),
                // §6.2: "we set T = I·J for RMM, which is the best setting
                // in terms of the aggregation performance".
                tasks: i as u64 * j as u64,
                broadcast_b: false,
                voxel_hash: true,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            MulMethod::Cuboid(spec) => ResolvedMethod {
                method,
                spec: CuboidSpec::new(spec.p.min(i), spec.q.min(j), spec.r.min(k)),
                tasks: spec.count(),
                broadcast_b: false,
                voxel_hash: false,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            MulMethod::CuboidAuto => {
                let spec = optimizer::optimize(problem, cfg)
                    .map(|o| o.spec)
                    .unwrap_or(CuboidSpec::new(i, j, k));
                ResolvedMethod {
                    method,
                    spec,
                    tasks: spec.count(),
                    broadcast_b: false,
                    voxel_hash: false,
                    pre_shuffle_bytes: 0,
                    output_resident: false,
                    ser_overhead: 1.0,
                    gpu_cost_based: true,
                }
            }
            // SDDMM is communication-shaped like BMM — row-stripes of the
            // dense left factor stay put, the dense right factor torrents
            // to every task — while the mask rides with A's row partition
            // and never crosses the wire.
            MulMethod::Sddmm => ResolvedMethod {
                method,
                spec: CuboidSpec::new(i, 1, 1),
                tasks: i as u64,
                broadcast_b: true,
                voxel_hash: false,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            // Shift-SpMM keeps the sparse operand's row-stripes stationary
            // and repartitions the dense factor's row panels to the stripe
            // that needs them — the shuffle-based rendering of the rotation
            // schedule (each task still sees every panel exactly once).
            MulMethod::SpmmShift => ResolvedMethod {
                method,
                spec: CuboidSpec::new(i, 1, 1),
                tasks: i as u64,
                broadcast_b: false,
                voxel_hash: false,
                pre_shuffle_bytes: 0,
                output_resident: false,
                ser_overhead: 1.0,
                gpu_cost_based: true,
            },
            MulMethod::Crmm => {
                // Cubic logical blocks: the smallest side s with s^3 >= M·Tc
                // parallelism, clamped to the model dims. The re-blocking
                // shuffle costs one pass over both inputs.
                let mut s = 1u32;
                while (s as u64).pow(3) < cfg.min_parallelism {
                    s += 1;
                }
                let spec = CuboidSpec::new(s.min(i), s.min(j), s.min(k));
                ResolvedMethod {
                    method,
                    spec,
                    tasks: spec.count(),
                    broadcast_b: false,
                    // Logical blocks *do* share communication within a cube
                    // (that is CRMM's improvement over RMM); its remaining
                    // handicaps are the cubic shape and the re-blocking
                    // shuffle.
                    voxel_hash: false,
                    pre_shuffle_bytes: problem.a.total_bytes() + problem.b.total_bytes(),
                    output_resident: false,
                    ser_overhead: 1.0,
                    gpu_cost_based: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OptimizerConfig {
        OptimizerConfig {
            task_mem_bytes: 6_000_000_000,
            min_parallelism: 90,
        }
    }

    fn problem() -> MatmulProblem {
        MatmulProblem::dense(70_000, 70_000, 70_000)
    }

    #[test]
    fn bmm_resolves_to_row_partition_with_broadcast() {
        let r = ResolvedMethod::resolve(MulMethod::Bmm, &problem(), &cfg());
        assert_eq!(r.spec, CuboidSpec::new(70, 1, 1));
        assert_eq!(r.tasks, 70);
        assert!(r.broadcast_b);
        assert!(!r.voxel_hash);
    }

    #[test]
    fn cpmm_resolves_to_k_outer_products() {
        let r = ResolvedMethod::resolve(MulMethod::Cpmm, &problem(), &cfg());
        assert_eq!(r.spec, CuboidSpec::new(1, 1, 70));
        assert_eq!(r.tasks, 70);
        assert!(!r.broadcast_b);
    }

    #[test]
    fn rmm_hashes_voxels_into_ij_tasks() {
        let r = ResolvedMethod::resolve(MulMethod::Rmm, &problem(), &cfg());
        assert_eq!(r.spec, CuboidSpec::new(70, 70, 70));
        assert_eq!(r.tasks, 4900);
        assert!(r.voxel_hash);
    }

    #[test]
    fn auto_uses_the_optimizer() {
        let r = ResolvedMethod::resolve(MulMethod::CuboidAuto, &problem(), &cfg());
        assert!(r.spec.count() >= 90);
        let mem = optimizer::mem_bytes(&problem(), r.spec);
        assert!(mem <= cfg().task_mem_bytes);
    }

    #[test]
    fn auto_degrades_to_voxel_grid_when_infeasible() {
        let tiny = OptimizerConfig {
            task_mem_bytes: 1, // nothing fits
            min_parallelism: 1,
        };
        let r = ResolvedMethod::resolve(MulMethod::CuboidAuto, &problem(), &tiny);
        assert_eq!(r.spec, CuboidSpec::new(70, 70, 70));
    }

    #[test]
    fn explicit_spec_is_clamped_to_dims() {
        let r = ResolvedMethod::resolve(
            MulMethod::Cuboid(CuboidSpec::new(500, 2, 3)),
            &problem(),
            &cfg(),
        );
        assert_eq!(r.spec.p, 70);
    }

    #[test]
    fn crmm_builds_cubic_grid_with_pre_shuffle() {
        let r = ResolvedMethod::resolve(MulMethod::Crmm, &problem(), &cfg());
        assert_eq!(r.spec.p, r.spec.q);
        assert_eq!(r.spec.q, r.spec.r);
        assert!(r.spec.count() >= 90);
        assert!(!r.voxel_hash);
        let expected = problem().a.total_bytes() + problem().b.total_bytes();
        assert_eq!(r.pre_shuffle_bytes, expected);
    }

    #[test]
    fn sddmm_resolves_like_bmm_over_the_mask_rows() {
        use distme_matrix::MatrixMeta;
        let p = MatmulProblem::sddmm(
            MatrixMeta::dense(70_000, 200),
            MatrixMeta::dense(200, 50_000),
            MatrixMeta::sparse(70_000, 50_000, 0.01),
        )
        .unwrap();
        let r = ResolvedMethod::resolve(MulMethod::Sddmm, &p, &cfg());
        assert_eq!(r.spec, CuboidSpec::new(70, 1, 1));
        assert_eq!(r.tasks, 70);
        assert!(r.broadcast_b, "right factor torrents like BMM");
        assert!(!r.voxel_hash);
        assert_eq!(r.pre_shuffle_bytes, 0, "mask never crosses the wire");
    }

    #[test]
    fn spmm_shift_row_shards_without_broadcast() {
        use distme_matrix::MatrixMeta;
        let p = MatmulProblem::new(
            MatrixMeta::sparse(70_000, 70_000, 0.001),
            MatrixMeta::dense(70_000, 200),
        )
        .unwrap();
        let r = ResolvedMethod::resolve(MulMethod::SpmmShift, &p, &cfg());
        assert_eq!(r.spec, CuboidSpec::new(70, 1, 1));
        assert_eq!(r.tasks, 70);
        assert!(!r.broadcast_b, "dense panels repartition, not broadcast");
        assert!(!r.voxel_hash);
    }

    #[test]
    fn names() {
        assert_eq!(MulMethod::Bmm.name(), "BMM");
        assert_eq!(MulMethod::CuboidAuto.name(), "CuboidMM");
        assert_eq!(MulMethod::Crmm.name(), "CRMM");
        assert_eq!(MulMethod::Sddmm.name(), "SDDMM");
        assert_eq!(MulMethod::SpmmShift.name(), "SpMM-shift");
    }
}
