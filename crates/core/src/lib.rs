//! # distme-core — CuboidMM and its GPU acceleration
//!
//! The paper's primary contribution (§3–§4), implemented over the
//! `distme-cluster` substrate:
//!
//! * [`problem`] — the 3-dimensional `I × J × K` voxel model of a blocked
//!   matrix multiplication (§2.2, Fig. 2);
//! * [`cuboid`] — `(P, Q, R)`-cuboid partitioning of that model (§3.1,
//!   Fig. 3): each cuboid is the unit of work of one task, and consecutive
//!   voxels inside a cuboid *share* network communication;
//! * [`optimizer`] — the exhaustive `(P*, Q*, R*)` search of §3.2 (Eq. 2–4)
//!   minimizing communication cost under the per-task memory bound θt, with
//!   the parallelism pruning rule `P·Q·R ≥ M·Tc`;
//! * [`methods`] — BMM, CPMM, RMM (§2.2) and CRMM (Marlin, §7) expressed as
//!   special cases / variants of cuboid partitioning, exactly as §3.1
//!   observes ("CuboidMM is a generalization of the existing three
//!   methods");
//! * [`subcuboid`] — the `(P2, Q2, R2)`-subcuboid optimizer for GPU memory
//!   θg (§4.2, Eq. 5–6);
//! * [`gpu_local`] — Algorithm 1: the per-task GPU schedule that streams
//!   B blocks against kernel calls and keeps `C` device-resident across
//!   k-axis iterations (§4.3–4.4);
//! * [`plan`] — the backend-agnostic physical plan IR: the three-step
//!   pipeline (repartition → local multiplication → aggregation) built
//!   *once* per job as routed block movements plus per-task resource
//!   summaries;
//! * [`plan_cache`] — epoch-keyed memoization of built plans: entries are
//!   tagged with the cluster membership epoch and the whole cache drops on
//!   any resize/decommission, so a plan routed for a dead grid is never
//!   served;
//! * [`sim_exec`] — lowers each plan task's summary onto the simulated
//!   cluster at paper scale;
//! * [`real_exec`] — materializes each plan task's blocks on the
//!   thread-backed cluster and charges the ledger from the plan's routing,
//!   used to *prove* every method computes the same product as the
//!   single-node reference — and that both backends report bit-identical
//!   communication bytes;
//! * [`pipelined`] — the dependency-driven streaming executor: fuses the
//!   three phases into one gated stage with per-task k-panel prefetch so
//!   communication overlaps compute, bit-identical to [`real_exec`];
//! * [`summa`] — SUMMA on an MPI-style process grid, the ScaLAPACK/SciDB
//!   comparison model of §6.5.

pub mod cuboid;
pub mod gpu_local;
pub mod methods;
pub mod optimizer;
pub mod pipelined;
pub mod plan;
pub mod plan_cache;
pub mod problem;
pub mod real_exec;
pub mod sim_exec;
pub mod subcuboid;
pub mod summa;

pub use cuboid::{Cuboid, CuboidGrid, CuboidSpec};
pub use methods::{MulMethod, ResolvedMethod};
pub use optimizer::{OptimizerConfig, Optimum};
pub use plan::{
    BlockMove, BroadcastPlan, JobPlan, Operand, PhaseComm, PlanStage, TaskSpec, TaskWork,
};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use problem::MatmulProblem;
pub use subcuboid::SubcuboidSpec;
