//! `(P, Q, R)`-cuboid partitioning of the 3-dimensional model (§3.1).
//!
//! The model space is cut into `P × Q × R` axis-aligned chunks of voxels.
//! Each (non-empty) cuboid `D(p,q,r)` is processed by one task; inside a
//! cuboid, consecutive voxels share communication: the A blocks are fetched
//! once per cuboid instead of once per voxel (Fig. 3(b), cases 1–3).

use crate::problem::MatmulProblem;
use distme_matrix::BlockId;

/// The partitioning parameters `(P, Q, R)` — numbers of partitions along
/// the i-, j-, and k-axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CuboidSpec {
    /// Partitions along the i-axis (`0 < P ≤ I`).
    pub p: u32,
    /// Partitions along the j-axis (`0 < Q ≤ J`).
    pub q: u32,
    /// Partitions along the k-axis (`0 < R ≤ K`).
    pub r: u32,
}

impl CuboidSpec {
    /// Creates a spec; the caller is responsible for `0 < P ≤ I` etc.
    /// (checked by [`CuboidGrid::new`]).
    pub const fn new(p: u32, q: u32, r: u32) -> Self {
        CuboidSpec { p, q, r }
    }

    /// Total cuboids, `P · Q · R`.
    pub fn count(&self) -> u64 {
        self.p as u64 * self.q as u64 * self.r as u64
    }
}

impl std::fmt::Display for CuboidSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.p, self.q, self.r)
    }
}

/// One cuboid `D(p,q,r)`: a box of voxels with concrete block ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cuboid {
    /// Grid position along the i-axis.
    pub p: u32,
    /// Grid position along the j-axis.
    pub q: u32,
    /// Grid position along the k-axis.
    pub r: u32,
    /// Block-row range `[i0, i1)` of A and C covered by this cuboid.
    pub i0: u32,
    /// End of the i range (exclusive).
    pub i1: u32,
    /// Block-column range `[j0, j1)` of B and C.
    pub j0: u32,
    /// End of the j range (exclusive).
    pub j1: u32,
    /// Block range `[k0, k1)` along the common dimension.
    pub k0: u32,
    /// End of the k range (exclusive).
    pub k1: u32,
}

impl Cuboid {
    /// Blocks of A this cuboid reads: `(i1−i0) · (k1−k0)`.
    pub fn a_blocks(&self) -> u64 {
        (self.i1 - self.i0) as u64 * (self.k1 - self.k0) as u64
    }

    /// Blocks of B this cuboid reads.
    pub fn b_blocks(&self) -> u64 {
        (self.k1 - self.k0) as u64 * (self.j1 - self.j0) as u64
    }

    /// Blocks of C this cuboid produces (intermediate when `R > 1`).
    pub fn c_blocks(&self) -> u64 {
        (self.i1 - self.i0) as u64 * (self.j1 - self.j0) as u64
    }

    /// Voxels inside the cuboid.
    pub fn voxels(&self) -> u64 {
        self.a_blocks() * (self.j1 - self.j0) as u64
    }

    /// True when the cuboid covers no voxels (happens at the grid edge when
    /// `⌈I/P⌉ · P > I`).
    pub fn is_empty(&self) -> bool {
        self.i0 >= self.i1 || self.j0 >= self.j1 || self.k0 >= self.k1
    }

    /// Extents in blocks: `(I', J', K')` in Algorithm 1's notation.
    pub fn extents(&self) -> (u32, u32, u32) {
        (self.i1 - self.i0, self.j1 - self.j0, self.k1 - self.k0)
    }

    /// Iterates the A-block ids the cuboid reads.
    pub fn a_block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (j0, j1) = (self.k0, self.k1);
        (self.i0..self.i1).flat_map(move |i| (j0..j1).map(move |k| BlockId::new(i, k)))
    }

    /// Iterates the B-block ids the cuboid reads.
    pub fn b_block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (j0, j1) = (self.j0, self.j1);
        (self.k0..self.k1).flat_map(move |k| (j0..j1).map(move |j| BlockId::new(k, j)))
    }

    /// Iterates the C-block ids the cuboid produces.
    pub fn c_block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (j0, j1) = (self.j0, self.j1);
        (self.i0..self.i1).flat_map(move |i| (j0..j1).map(move |j| BlockId::new(i, j)))
    }
}

/// The full cuboid decomposition of a problem.
#[derive(Debug, Clone, Copy)]
pub struct CuboidGrid {
    /// Problem dimensions `(I, J, K)` in blocks.
    pub dims: (u32, u32, u32),
    /// The partitioning parameters.
    pub spec: CuboidSpec,
    /// Cuboid extents `⌈I/P⌉ × ⌈J/Q⌉ × ⌈K/R⌉`.
    widths: (u32, u32, u32),
}

impl CuboidGrid {
    /// Builds the grid for `problem` under `spec`.
    ///
    /// # Panics
    /// Panics when the spec violates `0 < P ≤ I`, `0 < Q ≤ J`, `0 < R ≤ K`
    /// (the optimizer never produces such specs; manual specs are
    /// programmer input).
    pub fn new(problem: &MatmulProblem, spec: CuboidSpec) -> Self {
        let (i, j, k) = problem.dims();
        assert!(
            spec.p >= 1 && spec.p <= i && spec.q >= 1 && spec.q <= j && spec.r >= 1 && spec.r <= k,
            "spec {spec} out of range for dims ({i}, {j}, {k})"
        );
        CuboidGrid {
            dims: (i, j, k),
            spec,
            widths: (i.div_ceil(spec.p), j.div_ceil(spec.q), k.div_ceil(spec.r)),
        }
    }

    /// The cuboid at grid position `(p, q, r)` (possibly empty at edges).
    pub fn cuboid(&self, p: u32, q: u32, r: u32) -> Cuboid {
        let (i, j, k) = self.dims;
        let (wi, wj, wk) = self.widths;
        Cuboid {
            p,
            q,
            r,
            i0: (p * wi).min(i),
            i1: ((p + 1) * wi).min(i),
            j0: (q * wj).min(j),
            j1: ((q + 1) * wj).min(j),
            k0: (r * wk).min(k),
            k1: ((r + 1) * wk).min(k),
        }
    }

    /// Iterates the non-empty cuboids in `(p, q, r)` lexicographic order —
    /// one task each.
    pub fn cuboids(&self) -> impl Iterator<Item = Cuboid> + '_ {
        let spec = self.spec;
        (0..spec.p)
            .flat_map(move |p| {
                (0..spec.q).flat_map(move |q| (0..spec.r).map(move |r| self.cuboid(p, q, r)))
            })
            .filter(|c| !c.is_empty())
    }

    /// Number of non-empty cuboids (= tasks).
    pub fn task_count(&self) -> usize {
        self.cuboids().count()
    }

    /// Replication factor of each A block under this grid: every A block is
    /// read by `Q` cuboids (one per j-partition) — Fig. 3(b) case 1.
    pub fn a_replication(&self) -> u32 {
        self.spec.q
    }

    /// Replication factor of each B block: `P` (case 2).
    pub fn b_replication(&self) -> u32 {
        self.spec.p
    }

    /// Copies of each C block shuffled in aggregation: `R` (case 3).
    pub fn c_replication(&self) -> u32 {
        self.spec.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_matrix::MatrixMeta;

    /// The running example of Fig. 3(a): A is 4x8 blocks, B is 8x6 blocks,
    /// (2,2,2)-cuboid partitioning.
    fn fig3_grid() -> CuboidGrid {
        let a = MatrixMeta::dense(4, 8).with_block_size(1);
        let b = MatrixMeta::dense(8, 6).with_block_size(1);
        let p = MatmulProblem::new(a, b).unwrap();
        CuboidGrid::new(&p, CuboidSpec::new(2, 2, 2))
    }

    #[test]
    fn fig3_cuboid_shape() {
        let g = fig3_grid();
        // "a cuboid in Figure 3(a) consists of 2 x 3 x 4 voxels".
        let d = g.cuboid(0, 0, 0);
        assert_eq!(d.extents(), (2, 3, 4));
        assert_eq!(d.voxels(), 24);
        assert_eq!(d.a_blocks(), 8); // 2 x 4 blocks of A
        assert_eq!(d.b_blocks(), 12); // 4 x 3 blocks of B
        assert_eq!(d.c_blocks(), 6); // 2 x 3 intermediate C blocks
        assert_eq!(g.task_count(), 8);
    }

    #[test]
    fn cuboids_tile_the_model_exactly() {
        let g = fig3_grid();
        let total_voxels: u64 = g.cuboids().map(|c| c.voxels()).sum();
        assert_eq!(total_voxels, 4 * 6 * 8);
        // Every A block is read by exactly Q = 2 cuboids.
        let a_reads: u64 = g.cuboids().map(|c| c.a_blocks()).sum();
        assert_eq!(a_reads, 4 * 8 * g.a_replication() as u64);
        let b_reads: u64 = g.cuboids().map(|c| c.b_blocks()).sum();
        assert_eq!(b_reads, 8 * 6 * g.b_replication() as u64);
        let c_writes: u64 = g.cuboids().map(|c| c.c_blocks()).sum();
        assert_eq!(c_writes, 4 * 6 * g.c_replication() as u64);
    }

    #[test]
    fn degenerate_specs_match_named_methods() {
        // §3.1: (4,1,1) works like BMM, (1,1,8) like CPMM, (4,6,8) like RMM.
        let a = MatrixMeta::dense(4, 8).with_block_size(1);
        let b = MatrixMeta::dense(8, 6).with_block_size(1);
        let p = MatmulProblem::new(a, b).unwrap();

        let bmm = CuboidGrid::new(&p, CuboidSpec::new(4, 1, 1));
        assert_eq!(bmm.task_count(), 4);
        assert_eq!(bmm.cuboid(0, 0, 0).a_blocks(), 8); // one block-row of A
        assert_eq!(bmm.cuboid(0, 0, 0).b_blocks(), 48); // all of B

        let cpmm = CuboidGrid::new(&p, CuboidSpec::new(1, 1, 8));
        assert_eq!(cpmm.task_count(), 8);
        assert_eq!(cpmm.cuboid(0, 0, 0).a_blocks(), 4); // one block-col of A
        assert_eq!(cpmm.cuboid(0, 0, 0).c_blocks(), 24); // all of C

        let rmm = CuboidGrid::new(&p, CuboidSpec::new(4, 6, 8));
        assert_eq!(rmm.task_count(), 192); // one voxel per task
        assert_eq!(rmm.cuboid(0, 0, 0).voxels(), 1);
    }

    #[test]
    fn ragged_grids_produce_partial_and_empty_cuboids() {
        let a = MatrixMeta::dense(5, 2).with_block_size(1);
        let b = MatrixMeta::dense(2, 3).with_block_size(1);
        let p = MatmulProblem::new(a, b).unwrap();
        // P = 3 over I = 5: widths ceil(5/3) = 2 => rows {0,1},{2,3},{4}.
        let g = CuboidGrid::new(&p, CuboidSpec::new(3, 1, 1));
        let cs: Vec<_> = g.cuboids().collect();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].extents().0, 2);
        assert_eq!(cs[2].extents().0, 1);
        // P = 4 over I = 5: widths 2 => 3 non-empty cuboids, one empty.
        let g = CuboidGrid::new(&p, CuboidSpec::new(4, 1, 1));
        assert_eq!(g.task_count(), 3);
        let total: u64 = g.cuboids().map(|c| c.voxels()).sum();
        assert_eq!(total, p.voxels());
    }

    #[test]
    fn block_id_iterators_match_counts() {
        let g = fig3_grid();
        let d = g.cuboid(1, 1, 1);
        assert_eq!(d.a_block_ids().count() as u64, d.a_blocks());
        assert_eq!(d.b_block_ids().count() as u64, d.b_blocks());
        assert_eq!(d.c_block_ids().count() as u64, d.c_blocks());
        // The A ids live in the cuboid's (i, k) ranges.
        for id in d.a_block_ids() {
            assert!(id.row >= d.i0 && id.row < d.i1);
            assert!(id.col >= d.k0 && id.col < d.k1);
        }
        // B ids are indexed (k, j).
        for id in d.b_block_ids() {
            assert!(id.row >= d.k0 && id.row < d.k1);
            assert!(id.col >= d.j0 && id.col < d.j1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_spec_rejected() {
        let a = MatrixMeta::dense(4, 8).with_block_size(1);
        let b = MatrixMeta::dense(8, 6).with_block_size(1);
        let p = MatmulProblem::new(a, b).unwrap();
        let _ = CuboidGrid::new(&p, CuboidSpec::new(5, 1, 1));
    }

    #[test]
    fn spec_display_and_count() {
        let s = CuboidSpec::new(2, 3, 4);
        assert_eq!(s.to_string(), "(2, 3, 4)");
        assert_eq!(s.count(), 24);
    }
}
