//! Algorithm 1 — GPU-accelerated local multiplication of one cuboid
//! (§4.3–4.4).
//!
//! Two faces of the same schedule:
//!
//! * [`plan_work`] derives the aggregate device work ([`GpuWork`]) the
//!   schedule performs — H2D volume `Q2·|Am| + P2·|Bm|` (every subcuboid
//!   copies its A side; B blocks stream per-stream), one D2H of `|Cm|`
//!   (line 19–21: only the last k-iteration copies C back), `I'·J'·K'`
//!   kernel launches, `J'` streams. The simulated executor feeds this to
//!   the shared [`distme_gpu::GpuDevice`].
//! * [`execute_cuboid_real`] *runs* the schedule with real blocks (kernels
//!   execute on the CPU standing in for `cublasDgemm`/`cusparseDcsrmm`),
//!   iterating subcuboids in `(p2, q2, r2)` order and keeping the `C'`
//!   accumulator resident across the k-axis — proving the schedule computes
//!   the same product as a plain loop.

use crate::cuboid::Cuboid;
use crate::problem::MatmulProblem;
use crate::subcuboid::{self, CuboidSides, SubcuboidSpec};
use distme_cluster::{BlockSource, TaskError};
use distme_gpu::GpuWork;
use distme_matrix::{kernels, BlockId, DenseBlock};

/// Plans the device work for a cuboid of the given sides under θg.
///
/// Returns `None` when no subcuboid decomposition fits the GPU budget (the
/// task must fall back to the CPU kernel).
pub fn plan_work(
    sides: &CuboidSides,
    gpu_task_mem_bytes: u64,
    flops: f64,
    sparse: bool,
) -> Option<(SubcuboidSpec, GpuWork)> {
    let (spec, pcie_in) = subcuboid::optimize(sides, gpu_task_mem_bytes)?;
    let (i, j, k) = sides.extents;
    let voxels = i as u64 * j as u64 * k as u64;
    let h2d_bytes = pcie_in - sides.c_bytes();
    let work = GpuWork {
        h2d_bytes,
        d2h_bytes: sides.c_bytes(),
        dense_flops: if sparse { 0.0 } else { flops },
        sparse_flops: if sparse { flops } else { 0.0 },
        kernel_calls: voxels,
        streams: j.div_ceil(spec.q2) as usize,
    };
    Some((spec, work))
}

/// Result of running Algorithm 1 on real blocks.
#[derive(Debug)]
pub struct CuboidGpuResult {
    /// Intermediate C blocks produced by this cuboid (block id → content).
    pub blocks: Vec<(BlockId, DenseBlock)>,
    /// Subcuboid iterations performed (`P2 · Q2 · R2`).
    pub iterations: u64,
    /// Kernel invocations (block-pair products).
    pub kernel_calls: u64,
    /// The chosen subcuboid partitioning.
    pub spec: SubcuboidSpec,
}

/// Executes Algorithm 1 for `cuboid` against real operand blocks resolved
/// through any [`BlockSource`] — a locality-enforcing per-node store view
/// on the distributed path, or a plain `BlockMatrix` on single-node call
/// paths.
///
/// Blocks absent from sparse operands are treated as zero (their kernels
/// are skipped, like a csrmm on an empty block). The `C'` accumulator for
/// a `(p2, q2)` cell stays "device-resident" across the `r2` iterations and
/// is emitted once at `r2 = R2 − 1`, exactly as lines 19–21 copy `BufC`
/// back on the last k-subcuboid.
///
/// # Errors
/// Returns [`TaskError::OutOfMemory`] when even single-voxel subcuboids
/// exceed θg, and propagates the source's locality errors
/// ([`TaskError::MissingBlock`]).
pub fn execute_cuboid_real<A: BlockSource, B: BlockSource>(
    cuboid: &Cuboid,
    a: &A,
    b: &B,
    problem: &MatmulProblem,
    gpu_task_mem_bytes: u64,
) -> Result<CuboidGpuResult, TaskError> {
    let c_meta = &problem.c;
    let sides = CuboidSides::of(
        cuboid,
        problem.a.block_bytes(),
        problem.b.block_bytes(),
        c_meta.block_bytes(),
    );
    let Some((spec, _)) = subcuboid::optimize(&sides, gpu_task_mem_bytes) else {
        return Err(TaskError::OutOfMemory {
            needed: subcuboid::mem_bytes(
                &sides,
                SubcuboidSpec {
                    p2: sides.extents.0,
                    q2: sides.extents.1,
                    r2: sides.extents.2,
                },
            ),
            budget: gpu_task_mem_bytes,
        });
    };

    let (ie, je, ke) = cuboid.extents();
    let (wi, wj, wk) = (
        ie.div_ceil(spec.p2),
        je.div_ceil(spec.q2),
        ke.div_ceil(spec.r2),
    );

    let mut out: Vec<(BlockId, DenseBlock)> = Vec::new();
    let mut iterations = 0u64;
    let mut kernel_calls = 0u64;

    // Algorithm 1 line 4: subcuboids sorted by (p2, q2, r2) — for a fixed
    // (p2, q2) the r2 axis is innermost, so C' accumulates in place.
    for p2 in 0..spec.p2 {
        for q2 in 0..spec.q2 {
            let i_lo = cuboid.i0 + p2 * wi;
            let i_hi = (i_lo + wi).min(cuboid.i1);
            let j_lo = cuboid.j0 + q2 * wj;
            let j_hi = (j_lo + wj).min(cuboid.j1);
            if i_lo >= i_hi || j_lo >= j_hi {
                continue;
            }
            // BufC: accumulators for this (p2, q2) cell, "in GPU memory".
            let mut bufc: Vec<Vec<Option<DenseBlock>>> =
                vec![vec![None; (j_hi - j_lo) as usize]; (i_hi - i_lo) as usize];

            for r2 in 0..spec.r2 {
                let k_lo = cuboid.k0 + r2 * wk;
                let k_hi = (k_lo + wk).min(cuboid.k1);
                if k_lo >= k_hi {
                    continue;
                }
                iterations += 1;
                // Lines 13–18: per (k, j) copy B block, then I' kernels.
                for k in k_lo..k_hi {
                    for j in j_lo..j_hi {
                        let Some(bblk) = b.block(k, j)? else { continue };
                        for i in i_lo..i_hi {
                            let Some(ablk) = a.block(i, k)? else { continue };
                            let slot = &mut bufc[(i - i_lo) as usize][(j - j_lo) as usize];
                            let acc = slot.get_or_insert_with(|| {
                                let (r, c) = c_meta.block_dims(i, j);
                                DenseBlock::zeros(r as usize, c as usize)
                            });
                            kernels::multiply_accumulate(acc, &ablk, &bblk)?;
                            kernel_calls += 1;
                        }
                    }
                }
            }
            // Lines 19–21: after the last k-subcuboid, copy C' back.
            for (di, row) in bufc.into_iter().enumerate() {
                for (dj, slot) in row.into_iter().enumerate() {
                    if let Some(block) = slot {
                        out.push((BlockId::new(i_lo + di as u32, j_lo + dj as u32), block));
                    }
                }
            }
        }
    }

    Ok(CuboidGpuResult {
        blocks: out,
        iterations,
        kernel_calls,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::{CuboidGrid, CuboidSpec};
    use crate::problem::MatmulProblem;
    use distme_matrix::{Block, BlockMatrix, MatrixGenerator, MatrixMeta};

    fn setup(bs: u64) -> (BlockMatrix, BlockMatrix, MatmulProblem) {
        let am = MatrixMeta::dense(4 * bs, 8 * bs).with_block_size(bs);
        let bm = MatrixMeta::dense(8 * bs, 6 * bs).with_block_size(bs);
        let a = MatrixGenerator::with_seed(1).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&bm).unwrap();
        let p = MatmulProblem::new(am, bm).unwrap();
        (a, b, p)
    }

    #[test]
    fn plan_work_matches_eq6() {
        let sides = CuboidSides {
            extents: (2, 3, 4),
            a_block_bytes: 100,
            b_block_bytes: 100,
            c_block_bytes: 100,
        };
        // θg admitting (1,1,2) as in Fig. 5.
        let (spec, work) = plan_work(&sides, 1600, 1000.0, false).unwrap();
        assert_eq!(
            spec,
            SubcuboidSpec {
                p2: 1,
                q2: 1,
                r2: 2
            }
        );
        // h2d = Q2|Am| + P2|Bm| = 800 + 1200.
        assert_eq!(work.h2d_bytes, 2000);
        assert_eq!(work.d2h_bytes, 600);
        assert_eq!(work.kernel_calls, 24);
        assert_eq!(work.streams, 3); // J' = ceil(3/1)
        assert_eq!(work.dense_flops, 1000.0);
    }

    #[test]
    fn plan_work_sparse_routes_flops() {
        let sides = CuboidSides {
            extents: (1, 1, 1),
            a_block_bytes: 8,
            b_block_bytes: 8,
            c_block_bytes: 8,
        };
        let (_, work) = plan_work(&sides, 1000, 500.0, true).unwrap();
        assert_eq!(work.sparse_flops, 500.0);
        assert_eq!(work.dense_flops, 0.0);
    }

    #[test]
    fn plan_work_infeasible_returns_none() {
        let sides = CuboidSides {
            extents: (1, 1, 1),
            a_block_bytes: 1000,
            b_block_bytes: 1000,
            c_block_bytes: 1000,
        };
        assert!(plan_work(&sides, 100, 1.0, false).is_none());
    }

    #[test]
    fn real_schedule_matches_reference_product() {
        let (a, b, p) = setup(16);
        let grid = CuboidGrid::new(&p, CuboidSpec::new(2, 2, 2));
        let reference = a.multiply(&b).unwrap();
        // θg small enough to force several iterations: a cuboid holds
        // 8 A-blocks + 12 B-blocks + 6 C-blocks of 2 KiB each.
        let theta_g = 20_000u64;
        let mut c = BlockMatrix::new(p.c);
        for cuboid in grid.cuboids() {
            let res = execute_cuboid_real(&cuboid, &a, &b, &p, theta_g).unwrap();
            assert!(res.iterations > 1, "θg should force multiple iterations");
            for (id, blk) in res.blocks {
                // Aggregate intermediate blocks across the R = 2 cuboids.
                let merged = match c.get(id.row, id.col) {
                    Some(prev) => prev.add(&Block::Dense(blk)).unwrap(),
                    None => Block::Dense(blk),
                };
                c.put(id.row, id.col, merged).unwrap();
            }
        }
        assert!(
            c.max_abs_diff(&reference).unwrap() < 1e-9,
            "Algorithm 1 result diverges from reference"
        );
    }

    #[test]
    fn kernel_calls_equal_voxels() {
        let (a, b, p) = setup(8);
        let grid = CuboidGrid::new(&p, CuboidSpec::new(1, 1, 1));
        let cuboid = grid.cuboid(0, 0, 0);
        let res = execute_cuboid_real(&cuboid, &a, &b, &p, u64::MAX).unwrap();
        assert_eq!(res.kernel_calls, cuboid.voxels());
        assert_eq!(res.iterations, 1);
        assert_eq!(res.spec.iterations(), 1);
    }

    #[test]
    fn oom_when_theta_g_below_one_voxel() {
        let (a, b, p) = setup(8);
        let grid = CuboidGrid::new(&p, CuboidSpec::new(2, 2, 2));
        let cuboid = grid.cuboid(0, 0, 0);
        let err = execute_cuboid_real(&cuboid, &a, &b, &p, 16).unwrap_err();
        assert!(matches!(err, TaskError::OutOfMemory { .. }));
    }

    #[test]
    fn missing_blocks_are_skipped_as_zero() {
        let (_, b, p) = setup(8);
        // A with only one materialized block.
        let mut a = BlockMatrix::new(p.a);
        let gen = MatrixGenerator::with_seed(3);
        a.put(0, 0, gen.generate_block(&p.a, 0, 0).unwrap())
            .unwrap();
        let grid = CuboidGrid::new(&p, CuboidSpec::new(1, 1, 1));
        let res = execute_cuboid_real(&grid.cuboid(0, 0, 0), &a, &b, &p, u64::MAX).unwrap();
        let reference = a.multiply(&b).unwrap();
        // Only C-row 0 blocks can be non-zero.
        assert!(res.blocks.iter().all(|(id, _)| id.row == 0));
        let mut c = BlockMatrix::new(p.c);
        for (id, blk) in res.blocks {
            c.put(id.row, id.col, Block::Dense(blk)).unwrap();
        }
        assert!(c.max_abs_diff(&reference).unwrap() < 1e-9);
    }
}
