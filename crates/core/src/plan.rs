//! The backend-agnostic physical plan IR.
//!
//! Method resolution and the three-step stage construction of §2.2/Fig. 4
//! (matrix repartition → local multiplication → matrix aggregation) happen
//! exactly once, here, driven by a [`ResolvedMethod`] and the
//! [`CuboidGrid`] it induces. The result is a [`JobPlan`] whose tasks carry
//! two views of the same work:
//!
//! * a **routing** view ([`BlockMove`]s): which [`BlockId`]s move from
//!   which home node to which task, including the BMM broadcast special
//!   case (Eqs. 2–4 shape these volumes — `Q·|A| + P·|B|` in repartition,
//!   `R·|C|` in aggregation);
//! * a derived **summary** view ([`SimTask`]): shuffle/read bytes, CPU
//!   FLOPs or [`GpuWork`] per Eq. 5–6, feeding the simulator's calibrated
//!   time/memory models.
//!
//! The two executors are pure consumers: `sim_exec` lowers each task's
//! *summary* onto the simulated cluster, `real_exec` materializes each
//! task's blocks and charges the shuffle ledger from the plan's *routing*.
//! Because both backends read communication off the same `BlockMove`s, the
//! bytes the simulator reports are **bit-identical** to the bytes the real
//! ledger measures on the same plan (enforced by `tests/plan_parity.rs`).

use crate::cuboid::{Cuboid, CuboidGrid};
use crate::gpu_local;
use crate::methods::{MulMethod, ResolvedMethod};
use crate::optimizer::OptimizerConfig;
use crate::problem::MatmulProblem;
use crate::subcuboid::CuboidSides;
use distme_cluster::{ClusterConfig, ComputeWork, Phase, SimTask};
use distme_gpu::GpuWork;
use distme_matrix::BlockId;
use std::collections::BTreeMap;

/// Fraction of a *resident* intermediate output that actually occupies the
/// task heap: Spark's external sorter spills part of a materialized
/// partition before the heap limit, so a legacy (MatFast-style) CPMM task
/// holding |C| dies once ~75% of |C| exceeds θt — calibrated so Fig. 7(a)'s
/// MatFast survives 30K (|C| = 7.2 GB) and O.O.M.s at 40K (12.8 GB).
pub const RESIDENT_OUTPUT_FRACTION: f64 = 0.75;

/// Which operand a routed block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// Left input.
    A,
    /// Right input.
    B,
    /// Output (intermediate C copies shuffled to aggregation).
    C,
}

/// One block movement: `bytes` of block `id` shipped from its current
/// `from_node` to the node of the task that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMove {
    /// Operand space of `id`.
    pub operand: Operand,
    /// The moved block.
    pub id: BlockId,
    /// Node the block currently lives on (HDFS home or producer task).
    pub from_node: usize,
    /// Node of the consuming task.
    pub to_node: usize,
    /// Serialized size charged for the movement (includes the method's
    /// serialization-overhead factor).
    pub bytes: u64,
    /// Producer copy index: which mult task produced this intermediate
    /// (aggregation routing only; operand moves use 0). Distinguishes the
    /// `R` partial copies of one C block in the destination node's store.
    pub copy: u32,
}

/// One block a task waits for, as a placement-independent identity. The
/// `(operand, id, copy)` triple names exactly one routed [`BlockMove`]'s
/// payload, so "all of a task's [`BlockDep`]s have landed" is the
/// dependency-readiness condition the pipelined executor gates dispatch
/// on — per task, instead of per phase barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockDep {
    /// Operand space of the awaited block.
    pub operand: Operand,
    /// The awaited block.
    pub id: BlockId,
    /// Producer copy index (aggregation inputs only; operand moves use 0).
    pub copy: u32,
}

/// What a task executes when the plan runs with real blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskWork {
    /// Stage-1 map task: reads an input split and writes replicated copies
    /// into the shuffle. Carries no block-level work of its own.
    MapRead,
    /// Multiply one cuboid's blocks (shared communication within the
    /// cuboid, §3.1).
    Cuboid(Cuboid),
    /// Multiply a hash-bucket of voxels (RMM: no communication sharing).
    Voxels(Vec<(u32, u32, u32)>),
    /// Reduce the `R` intermediate copies of each listed C block.
    Aggregate(Vec<BlockId>),
}

/// One planned task: placement, work, routed inputs, and the simulator's
/// byte/FLOP summary.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Node the scheduler places this task on.
    pub node: usize,
    /// The task's work, executable against real blocks.
    pub work: TaskWork,
    /// Block movements feeding this task (charged to the owning stage's
    /// [`PlanStage::input_phase`]).
    pub inputs: Vec<BlockMove>,
    /// The simulator's resource summary of this task. The summary keeps
    /// the calibrated cost-model formulas (even split shares, Eq. 5–6 GPU
    /// work); it drives simulated *time and memory*, while the routing
    /// view is the single source of truth for *communication bytes*.
    pub summary: SimTask,
}

impl TaskSpec {
    /// The exact set of blocks this task consumes, derived from its routed
    /// inputs. The task is runnable once every listed dependency has landed
    /// on [`TaskSpec::node`] — the per-task readiness contract that
    /// replaces the phase barrier. Duplicate moves of one identity (RMM
    /// voxel buckets re-fetching a block for several voxels) collapse to a
    /// single dependency.
    pub fn dependencies(&self) -> std::collections::BTreeSet<BlockDep> {
        self.inputs
            .iter()
            .map(|m| BlockDep {
                operand: m.operand,
                id: m.id,
                copy: m.copy,
            })
            .collect()
    }

    /// For an aggregation task: the local-mult task indices producing its
    /// inputs (a C move's `copy` field *is* the producer task index). An
    /// aggregation task is dispatchable once these producers finished —
    /// the coarser, crash-safe gate the pipelined executor uses for C
    /// copies, since an implicit-zero intermediate never physically lands.
    pub fn producer_tasks(&self) -> std::collections::BTreeSet<usize> {
        self.inputs
            .iter()
            .filter(|m| m.operand == Operand::C)
            .map(|m| m.copy as usize)
            .collect()
    }
}

/// One stage of the pipeline.
#[derive(Debug, Clone)]
pub struct PlanStage {
    /// Which pipeline step these tasks execute.
    pub phase: Phase,
    /// Which phase the tasks' input movements are accounted to. The
    /// local-mult stage consumes the *repartition* shuffle, so its moves
    /// are charged to [`Phase::Repartition`].
    pub input_phase: Phase,
    /// The stage's tasks, in scheduling order (`node = index % nodes`).
    pub tasks: Vec<TaskSpec>,
}

/// BMM's torrent broadcast of B (§2.2.1). Accounting follows Table 2:
/// every local-mult task fetches and deserializes its own copy, so the
/// charged volume is `copies · bytes_per_copy = T·|B|` (the *time* model
/// uses the one-wire-copy-per-node semantics instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// Unscaled serialized size of one copy (`|B|`).
    pub bytes_per_copy: u64,
    /// Number of fetching tasks (`T`).
    pub copies: u64,
}

/// Communication charged to one phase, summed over the plan's routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseComm {
    /// Bytes moved through the shuffle (all copies counted).
    pub shuffle_bytes: u64,
    /// The subset of `shuffle_bytes` crossing a node boundary.
    pub cross_node_bytes: u64,
    /// Bytes moved by broadcast.
    pub broadcast_bytes: u64,
}

/// A complete physical plan for one distributed multiplication.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// The resolved method the plan was built from.
    pub resolved: ResolvedMethod,
    /// The problem being multiplied.
    pub problem: MatmulProblem,
    /// Cluster width the routing was computed for.
    pub nodes: usize,
    /// Membership epoch the routing was computed at (0 for a cluster that
    /// never resized). Executors reject a plan whose epoch is stale — the
    /// grid it routed for no longer exists, even if the node *count*
    /// happens to match again.
    pub epoch: u64,
    /// BMM's broadcast of B, when the method uses one.
    pub broadcast: Option<BroadcastPlan>,
    /// Stages in execution order: repartition map, local multiplication,
    /// and (only when `R > 1`) aggregation.
    pub stages: Vec<PlanStage>,
}

impl JobPlan {
    /// Resolves `method` against `problem` (running the §3.2 optimizer at
    /// most once) and builds the plan. This is the **only** place method
    /// resolution happens on the execution path — both executors receive
    /// the already-resolved plan.
    pub fn build(problem: &MatmulProblem, method: MulMethod, cfg: &ClusterConfig) -> Self {
        let resolved =
            ResolvedMethod::resolve(method, problem, &OptimizerConfig::from_cluster(cfg));
        Self::from_resolved(problem, &resolved, cfg)
    }

    /// Builds the plan for a pre-resolved method (parameter sweeps, system
    /// profiles with legacy execution semantics).
    pub fn from_resolved(
        problem: &MatmulProblem,
        resolved: &ResolvedMethod,
        cfg: &ClusterConfig,
    ) -> Self {
        Builder {
            problem,
            resolved,
            cfg,
            nodes: cfg.nodes.max(1),
        }
        .build()
    }

    /// Stamps the plan with the membership epoch it was built at (builder
    /// style). Executors check it against their cluster's current epoch.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The stage executing `phase`, if the plan has one.
    pub fn stage(&self, phase: Phase) -> Option<&PlanStage> {
        self.stages.iter().find(|s| s.phase == phase)
    }

    /// Communication charged to `phase`, summed over every stage whose
    /// inputs are accounted there (plus the broadcast for repartition).
    /// Both executors report exactly these numbers.
    pub fn phase_comm(&self, phase: Phase) -> PhaseComm {
        let mut comm = PhaseComm::default();
        for stage in &self.stages {
            if stage.input_phase != phase {
                continue;
            }
            for task in &stage.tasks {
                for m in &task.inputs {
                    comm.shuffle_bytes += m.bytes;
                    if m.from_node != m.to_node {
                        comm.cross_node_bytes += m.bytes;
                    }
                }
            }
        }
        if phase == Phase::Repartition {
            if let Some(b) = self.broadcast {
                comm.broadcast_bytes = b.bytes_per_copy.saturating_mul(b.copies);
            }
        }
        comm
    }

    /// The HDFS home node of an input block under this plan's routing —
    /// where the executor must ingest it for the plan's `from_node`s to be
    /// physical facts.
    pub fn home_of(&self, operand: Operand, id: BlockId) -> usize {
        operand_home(operand, id, self.nodes)
    }

    /// Per-task dependency sets for the stage executing `phase`: entry `t`
    /// lists the exact blocks task `t` consumes, so the plan exposes
    /// "task T is runnable once blocks {b…} have landed" instead of
    /// "the previous phase is done". Empty when the plan has no such stage.
    pub fn task_dependencies(&self, phase: Phase) -> Vec<std::collections::BTreeSet<BlockDep>> {
        self.stage(phase)
            .map(|s| s.tasks.iter().map(TaskSpec::dependencies).collect())
            .unwrap_or_default()
    }
}

/// The HDFS home node of an input block (same hash the plan's routing
/// uses). `C` has no HDFS home — its copies live on producer-task nodes.
pub fn operand_home(operand: Operand, id: BlockId, nodes: usize) -> usize {
    match operand {
        Operand::A => home_node(id, 0, nodes),
        Operand::B => home_node(id, 1, nodes),
        Operand::C => panic!("C blocks have no HDFS home; they live on producer nodes"),
    }
}

/// HDFS "home" node of an input block (`which` salts A/B/destination
/// spaces apart). The hash itself lives in `distme_cluster::rebalance` so
/// elastic block migration and plan routing can never disagree about
/// placement; this is a thin delegation.
fn home_node(id: BlockId, which: u64, nodes: usize) -> usize {
    distme_cluster::rebalance::home_node(id, which, nodes)
}

/// Plan construction state: the byte model shared by every stage.
struct Builder<'a> {
    problem: &'a MatmulProblem,
    resolved: &'a ResolvedMethod,
    cfg: &'a ClusterConfig,
    nodes: usize,
}

impl Builder<'_> {
    fn build(self) -> JobPlan {
        let problem = self.problem;
        let resolved = self.resolved;
        let grid = CuboidGrid::new(problem, resolved.spec);

        let (mult_tasks, producers) = self.mult_stage(&grid);
        let broadcast = resolved.broadcast_b.then(|| BroadcastPlan {
            bytes_per_copy: problem.b.total_bytes(),
            copies: mult_tasks.len() as u64,
        });
        let pre_moves = self.pre_shuffle_moves();
        let map_tasks = self.map_stage(&mult_tasks, pre_moves);

        let mut stages = vec![
            PlanStage {
                phase: Phase::Repartition,
                input_phase: Phase::Repartition,
                tasks: map_tasks,
            },
            PlanStage {
                phase: Phase::LocalMult,
                input_phase: Phase::Repartition,
                tasks: mult_tasks,
            },
        ];
        if resolved.spec.r > 1 {
            stages.push(self.agg_stage(&grid, &producers));
        }
        JobPlan {
            resolved: *resolved,
            problem: *problem,
            nodes: self.nodes,
            epoch: 0,
            broadcast,
            stages,
        }
    }

    /// Per-block share of an operand's (serialization-scaled) total. The
    /// shares of one full replica sum exactly to the scaled total, so the
    /// plan's repartition volume is exactly `Q·|A| + P·|B|` (Eq. 4) and its
    /// aggregation volume exactly `R·|C|`.
    fn a_move(&self, id: BlockId, to_node: usize) -> BlockMove {
        let a = &self.problem.a;
        let dk = self.problem.dims().2 as u64;
        BlockMove {
            operand: Operand::A,
            id,
            from_node: home_node(id, 0, self.nodes),
            to_node,
            bytes: split_share(
                scale(a.total_bytes(), self.resolved.ser_overhead),
                a.num_blocks(),
                id.row as u64 * dk + id.col as u64,
            ),
            copy: 0,
        }
    }

    fn b_move(&self, id: BlockId, to_node: usize) -> BlockMove {
        let b = &self.problem.b;
        let dj = self.problem.dims().1 as u64;
        BlockMove {
            operand: Operand::B,
            id,
            from_node: home_node(id, 1, self.nodes),
            to_node,
            bytes: split_share(
                scale(b.total_bytes(), self.resolved.ser_overhead),
                b.num_blocks(),
                id.row as u64 * dj + id.col as u64,
            ),
            copy: 0,
        }
    }

    fn c_share(&self, id: BlockId) -> u64 {
        let c = &self.problem.c;
        let dj = self.problem.dims().1 as u64;
        split_share(
            scale(c.total_bytes(), self.resolved.ser_overhead),
            c.num_blocks(),
            id.row as u64 * dj + id.col as u64,
        )
    }

    /// Stage 2: one task per non-empty cuboid (or RMM voxel bucket), with
    /// routed inputs and the simulator summary. Also collects, per output
    /// block, which task indices produce an intermediate copy of it.
    fn mult_stage(&self, grid: &CuboidGrid) -> (Vec<TaskSpec>, BTreeMap<BlockId, Vec<usize>>) {
        let problem = self.problem;
        let resolved = self.resolved;
        let cfg = self.cfg;
        let use_gpu = cfg.gpu.is_some();
        let ab = problem.a_block_bytes();
        let bb = problem.b_block_bytes();
        let cb = problem.c_block_bytes();
        let fpv = problem.flops_per_voxel();
        let sparse = problem.uses_sparse_kernels();
        let needs_aggregation = resolved.spec.r > 1;

        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut producers: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();

        if resolved.voxel_hash {
            // RMM: voxels hashed over `t` buckets; no communication
            // sharing — each voxel fetches its own pair of blocks and
            // ships its own intermediate block.
            let t = resolved.tasks.min(problem.voxels()).max(1);
            let voxels = problem.voxels();
            let (di, dj, dk) = problem.dims();
            let mut buckets: Vec<Vec<(u32, u32, u32)>> =
                (0..t as usize).map(|_| Vec::new()).collect();
            for vi in 0..di {
                for vj in 0..dj {
                    for vk in 0..dk {
                        buckets[(voxel_hash(vi, vj, vk) % t) as usize].push((vi, vj, vk));
                    }
                }
            }
            for (idx, bucket) in buckets.into_iter().enumerate() {
                let node = idx % self.nodes;
                let mut inputs = Vec::with_capacity(2 * bucket.len());
                for &(vi, vj, vk) in &bucket {
                    inputs.push(self.a_move(BlockId::new(vi, vk), node));
                    inputs.push(self.b_move(BlockId::new(vk, vj), node));
                    if needs_aggregation {
                        producers.entry(BlockId::new(vi, vj)).or_default().push(idx);
                    }
                }
                // Summary: the calibrated even-split model (buckets are
                // near-uniform; the time model does not chase per-bucket
                // jitter).
                let vox = split_share(voxels, t, idx as u64);
                let in_bytes = scale(vox * (ab + bb), resolved.ser_overhead);
                // With K = 1 every voxel's product is final — nothing is
                // shuffled to an aggregation stage.
                let out_bytes = if dk > 1 {
                    scale(vox * cb, resolved.ser_overhead)
                } else {
                    0
                };
                let flops = vox as f64 * fpv;
                let compute = if use_gpu {
                    // §6.2: "RMM cannot perform cuboid-level GPU
                    // computation, but simple block-level GPU computation
                    // due to its hash partitioning" — no C residence, one
                    // stream.
                    ComputeWork::Gpu(GpuWork {
                        h2d_bytes: in_bytes,
                        d2h_bytes: out_bytes,
                        dense_flops: if sparse { 0.0 } else { flops },
                        sparse_flops: if sparse { flops } else { 0.0 },
                        kernel_calls: vox,
                        streams: 1,
                    })
                } else {
                    ComputeWork::Cpu { flops }
                };
                tasks.push(TaskSpec {
                    node,
                    work: TaskWork::Voxels(bucket),
                    inputs,
                    summary: SimTask {
                        shuffle_in_bytes: in_bytes,
                        local_read_bytes: 0,
                        compute,
                        shuffle_out_bytes: out_bytes,
                        local_write_bytes: 0,
                        // An RMM task iterates its voxels sequentially —
                        // only a few blocks are live at once (which is
                        // precisely why RMM "can process without out of
                        // memory", §2.2.4).
                        mem_bytes: 3 * (ab + bb + cb)
                            + if resolved.output_resident {
                                (out_bytes as f64 * RESIDENT_OUTPUT_FRACTION) as u64
                            } else {
                                0
                            },
                    },
                });
            }
        } else {
            for (idx, cuboid) in grid.cuboids().enumerate() {
                let node = idx % self.nodes;
                let mut inputs: Vec<BlockMove> = cuboid
                    .a_block_ids()
                    .map(|id| self.a_move(id, node))
                    .collect();
                if !resolved.broadcast_b {
                    inputs.extend(cuboid.b_block_ids().map(|id| self.b_move(id, node)));
                }
                if needs_aggregation {
                    for id in cuboid.c_block_ids() {
                        producers.entry(id).or_default().push(idx);
                    }
                }
                let a_bytes = cuboid.a_blocks() * ab;
                let b_bytes = cuboid.b_blocks() * bb;
                let c_bytes = cuboid.c_blocks() * cb;
                let flops = cuboid.voxels() as f64 * fpv;
                let shuffle_in = scale(
                    a_bytes + if resolved.broadcast_b { 0 } else { b_bytes },
                    resolved.ser_overhead,
                );
                // Memory model: a broadcast B is stored once per node and
                // shared (checked against node memory by the executor).
                // Output residency: a BMM (mapmm-style) task computes its
                // whole final output row-partition inside the map call
                // before writing — the 6 GB C row that kills BMM at
                // 750K x 1K x 750K (Fig. 6(c)). Shuffle-based methods emit
                // C blocks one at a time; MatFast's naive CPMM additionally
                // materializes most of its intermediate |C| (see
                // RESIDENT_OUTPUT_FRACTION).
                let resident_c = if resolved.broadcast_b && resolved.spec.r == 1 {
                    c_bytes
                } else if resolved.output_resident {
                    (c_bytes as f64 * RESIDENT_OUTPUT_FRACTION) as u64
                } else {
                    cb
                };
                let mem = a_bytes + if resolved.broadcast_b { 0 } else { b_bytes } + resident_c;
                let compute = if use_gpu {
                    let gpu_cfg = cfg.gpu.expect("use_gpu implies config");
                    let sides = CuboidSides::of(&cuboid, ab, bb, cb);
                    match gpu_local::plan_work(&sides, gpu_cfg.task_mem_bytes, flops, sparse) {
                        // §5: the plan generator produces "a physical plan
                        // that can be executed in either CPU or GPU" —
                        // pick the GPU only when its estimated time
                        // (PCI-E + kernels) beats the CPU kernel.
                        // Data-movement-dominated operators (GNMF's skinny
                        // products) stay on the CPU.
                        Some((_, work)) => {
                            let kernel_rate = if sparse {
                                gpu_cfg.sparse_flops_per_sec
                            } else {
                                gpu_cfg.kernel_flops_per_sec
                            };
                            let gpu_secs = work.h2d_bytes as f64 / gpu_cfg.h2d_bytes_per_sec
                                + flops / kernel_rate
                                + work.d2h_bytes as f64 / gpu_cfg.d2h_bytes_per_sec;
                            let cpu_secs = flops / cfg.slot_flops_per_sec();
                            if gpu_secs < cpu_secs || !resolved.gpu_cost_based {
                                ComputeWork::Gpu(work)
                            } else {
                                ComputeWork::Cpu { flops }
                            }
                        }
                        // Cuboid unusable on the GPU: CPU fallback.
                        None => ComputeWork::Cpu { flops },
                    }
                } else {
                    ComputeWork::Cpu { flops }
                };
                // Final C is consumed by a count-style action (the paper
                // does not pay an HDFS write in its matmul timings), so
                // R = 1 produces no writes at all.
                let shuffle_out = if resolved.spec.r > 1 {
                    scale(c_bytes, resolved.ser_overhead)
                } else {
                    0
                };
                tasks.push(TaskSpec {
                    node,
                    work: TaskWork::Cuboid(cuboid),
                    inputs,
                    summary: SimTask {
                        shuffle_in_bytes: shuffle_in,
                        local_read_bytes: 0,
                        compute,
                        shuffle_out_bytes: shuffle_out,
                        local_write_bytes: 0,
                        mem_bytes: mem,
                    },
                });
            }
        }
        (tasks, producers)
    }

    /// CRMM's logical-block formation (§7): one extra pass over both
    /// inputs, each block re-shuffled from its home to a re-blocking
    /// destination before repartition proper.
    fn pre_shuffle_moves(&self) -> Vec<BlockMove> {
        if self.resolved.pre_shuffle_bytes == 0 {
            return Vec::new();
        }
        let (di, dj, dk) = self.problem.dims();
        let mut moves = Vec::new();
        for row in 0..di {
            for col in 0..dk {
                let id = BlockId::new(row, col);
                let mut m = self.a_move(id, home_node(id, 2, self.nodes));
                m.from_node = home_node(id, 0, self.nodes);
                moves.push(m);
            }
        }
        for row in 0..dk {
            for col in 0..dj {
                let id = BlockId::new(row, col);
                let mut m = self.b_move(id, home_node(id, 3, self.nodes));
                m.from_node = home_node(id, 1, self.nodes);
                moves.push(m);
            }
        }
        moves
    }

    /// Stage 1: map tasks reading the inputs and writing the replicated
    /// copies into the shuffle. The written volume is, by construction,
    /// exactly the volume the local-mult stage's routed inputs (plus any
    /// pre-shuffle) consume.
    fn map_stage(&self, mult_tasks: &[TaskSpec], pre_moves: Vec<BlockMove>) -> Vec<TaskSpec> {
        let problem = self.problem;
        let rep_total: u64 = mult_tasks
            .iter()
            .flat_map(|t| t.inputs.iter())
            .chain(pre_moves.iter())
            .map(|m| m.bytes)
            .sum();
        let a_total = problem.a.total_bytes();
        let b_total = problem.b.total_bytes();
        let ab = problem.a_block_bytes();
        let bb = problem.b_block_bytes();
        let input_blocks = problem.a.num_blocks() + problem.b.num_blocks();
        let t_map = (self.cfg.total_slots() as u64).min(input_blocks).max(1);
        let mut tasks: Vec<TaskSpec> = (0..t_map)
            .map(|i| TaskSpec {
                node: i as usize % self.nodes,
                work: TaskWork::MapRead,
                inputs: Vec::new(),
                summary: SimTask {
                    shuffle_in_bytes: 0,
                    local_read_bytes: split_share(a_total + b_total, t_map, i),
                    compute: ComputeWork::None,
                    shuffle_out_bytes: split_share(rep_total, t_map, i),
                    local_write_bytes: 0,
                    mem_bytes: 4 * ab.max(bb),
                },
            })
            .collect();
        for (mi, m) in pre_moves.into_iter().enumerate() {
            tasks[mi % t_map as usize].inputs.push(m);
        }
        tasks
    }

    /// Stage 3 (`R > 1`): C blocks assigned round-robin to aggregation
    /// tasks; each block receives one routed copy per producing mult task.
    fn agg_stage(&self, grid: &CuboidGrid, producers: &BTreeMap<BlockId, Vec<usize>>) -> PlanStage {
        let problem = self.problem;
        let resolved = self.resolved;
        let r = grid.c_replication() as u64;
        let c_total = problem.c.total_bytes();
        let cb = problem.c_block_bytes();
        let c_blocks = problem.c.num_blocks();
        let dj = problem.dims().1 as u64;
        let t_agg = c_blocks
            .min((self.cfg.total_slots() as u64).max(resolved.spec.count()))
            .max(1);
        let mut tasks: Vec<TaskSpec> = (0..t_agg)
            .map(|i| TaskSpec {
                node: i as usize % self.nodes,
                work: TaskWork::Aggregate(Vec::new()),
                inputs: Vec::new(),
                summary: SimTask {
                    shuffle_in_bytes: scale(
                        split_share(r * c_total, t_agg, i),
                        resolved.ser_overhead,
                    ),
                    local_read_bytes: 0,
                    compute: ComputeWork::Cpu {
                        // One add per element per extra copy.
                        flops: (r - 1) as f64 * split_share(problem.c.elements(), t_agg, i) as f64,
                    },
                    shuffle_out_bytes: 0,
                    // Aggregated C is consumed, not written back to HDFS.
                    local_write_bytes: 0,
                    mem_bytes: split_share(c_total, t_agg, i) + cb,
                },
            })
            .collect();
        for lin in 0..c_blocks {
            let id = BlockId::new((lin / dj) as u32, (lin % dj) as u32);
            let g = (lin % t_agg) as usize;
            let to_node = tasks[g].node;
            if let Some(ps) = producers.get(&id) {
                let bytes = self.c_share(id);
                for &p in ps {
                    tasks[g].inputs.push(BlockMove {
                        operand: Operand::C,
                        id,
                        from_node: p % self.nodes,
                        to_node,
                        bytes,
                        copy: p as u32,
                    });
                }
            }
            let TaskWork::Aggregate(ids) = &mut tasks[g].work else {
                unreachable!("agg tasks are built with Aggregate work");
            };
            ids.push(id);
        }
        PlanStage {
            phase: Phase::Aggregation,
            input_phase: Phase::Aggregation,
            tasks,
        }
    }
}

/// Applies a serialization-format overhead factor to a byte volume.
pub(crate) fn scale(bytes: u64, factor: f64) -> u64 {
    if factor == 1.0 {
        bytes
    } else {
        (bytes as f64 * factor) as u64
    }
}

/// Splits `total` into `parts` near-equal integer shares; share `idx` gets
/// the remainder spread over the first `total % parts` parts (`idx` is
/// reduced modulo `parts`, so block linear indices can be passed directly).
pub(crate) fn split_share(total: u64, parts: u64, idx: u64) -> u64 {
    let base = total / parts;
    base + u64::from(idx % parts < total % parts)
}

/// Splitmix-style voxel hash: RMM's `(i, j, k) → bucket` partitioner.
fn voxel_hash(i: u32, j: u32, k: u32) -> u64 {
    let mut z = ((i as u64) << 42 | (j as u64) << 21 | k as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CuboidSpec;

    fn laptop() -> ClusterConfig {
        ClusterConfig::laptop()
    }

    #[test]
    fn split_share_conserves_total() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1u64, 3, 7, 13] {
                let sum: u64 = (0..parts).map(|i| split_share(total, parts, i)).sum();
                assert_eq!(sum, total, "total {total}, parts {parts}");
            }
        }
    }

    #[test]
    fn empty_cuboids_do_not_become_tasks() {
        // I = 5, P = 4: widths 2 => 3 non-empty row bands.
        let p = MatmulProblem::dense(5_000, 2_000, 3_000);
        let plan = JobPlan::build(&p, MulMethod::Cuboid(CuboidSpec::new(4, 1, 1)), &laptop());
        assert_eq!(plan.stage(Phase::LocalMult).unwrap().tasks.len(), 3);
    }

    #[test]
    fn routing_matches_cost_model_exactly() {
        // Eq. 4 on an evenly-divisible grid: repartition routes exactly
        // Q·|A| + P·|B| and aggregation exactly R·|C|.
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let plan = JobPlan::build(
            &p,
            MulMethod::Cuboid(CuboidSpec::new(4, 7, 4)),
            &ClusterConfig::paper_cluster(),
        );
        let rep = plan.phase_comm(Phase::Repartition);
        assert_eq!(
            rep.shuffle_bytes,
            7 * p.a.total_bytes() + 4 * p.b.total_bytes()
        );
        assert_eq!(rep.broadcast_bytes, 0);
        let agg = plan.phase_comm(Phase::Aggregation);
        assert_eq!(agg.shuffle_bytes, 4 * p.c.total_bytes());
        // The local-mult stage consumes the repartition shuffle; nothing
        // is charged to it directly.
        assert_eq!(plan.phase_comm(Phase::LocalMult), PhaseComm::default());
    }

    #[test]
    fn bmm_broadcast_counts_one_copy_per_task() {
        let p = MatmulProblem::dense(30_000, 30_000, 30_000);
        let plan = JobPlan::build(&p, MulMethod::Bmm, &ClusterConfig::paper_cluster());
        let bc = plan.broadcast.expect("BMM broadcasts B");
        assert_eq!(bc.bytes_per_copy, p.b.total_bytes());
        assert_eq!(
            bc.copies,
            plan.stage(Phase::LocalMult).unwrap().tasks.len() as u64
        );
        // Table 2 accounting: T·|B| with T = I = 30 tasks.
        assert_eq!(
            plan.phase_comm(Phase::Repartition).broadcast_bytes,
            30 * p.b.total_bytes()
        );
        // No B shuffle moves when broadcasting.
        assert!(plan
            .stages
            .iter()
            .flat_map(|s| s.tasks.iter())
            .flat_map(|t| t.inputs.iter())
            .all(|m| m.operand != Operand::B));
        // And no aggregation stage (R = 1).
        assert!(plan.stage(Phase::Aggregation).is_none());
    }

    #[test]
    fn moves_land_on_their_tasks_node() {
        let p = MatmulProblem::dense(5_000, 5_000, 5_000);
        let plan = JobPlan::build(&p, MulMethod::Cpmm, &laptop());
        for stage in &plan.stages {
            // Map-stage inputs are CRMM pre-moves with their own
            // destinations; every other stage's moves terminate at the
            // consuming task.
            if stage.phase == Phase::Repartition {
                continue;
            }
            for task in &stage.tasks {
                for m in &task.inputs {
                    assert_eq!(m.to_node, task.node);
                    assert!(m.from_node < plan.nodes && m.to_node < plan.nodes);
                }
            }
        }
    }

    #[test]
    fn aggregation_inputs_have_r_producers_per_block() {
        let p = MatmulProblem::dense(5_000, 5_000, 5_000);
        let plan = JobPlan::build(&p, MulMethod::Cuboid(CuboidSpec::new(1, 1, 5)), &laptop());
        let agg = plan.stage(Phase::Aggregation).expect("R = 5 aggregates");
        let mut copies: BTreeMap<BlockId, usize> = BTreeMap::new();
        for t in &agg.tasks {
            for m in &t.inputs {
                *copies.entry(m.id).or_default() += 1;
            }
        }
        assert_eq!(copies.len() as u64, p.c.num_blocks());
        assert!(copies.values().all(|&n| n == 5));
    }

    #[test]
    fn crmm_pre_shuffle_rides_on_the_map_stage() {
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let plan = JobPlan::build(&p, MulMethod::Crmm, &ClusterConfig::paper_cluster());
        let map = plan.stage(Phase::Repartition).unwrap();
        let pre: u64 = map
            .tasks
            .iter()
            .flat_map(|t| t.inputs.iter())
            .map(|m| m.bytes)
            .sum();
        // One full extra pass over both inputs.
        assert_eq!(pre, p.a.total_bytes() + p.b.total_bytes());
    }

    #[test]
    fn resolution_happens_exactly_once_per_plan() {
        // Regression for the duplicated-resolution bug class: building a
        // plan (the whole execution path's entry) must run the §3.2
        // optimizer exactly once, not once per stage or per executor.
        let p = MatmulProblem::dense(5_000, 5_000, 5_000);
        let before = crate::optimizer::instrument::optimize_calls();
        let _ = JobPlan::build(&p, MulMethod::CuboidAuto, &laptop());
        assert_eq!(crate::optimizer::instrument::optimize_calls() - before, 1);
    }

    #[test]
    fn task_dependencies_name_exactly_the_routed_inputs() {
        let p = MatmulProblem::dense(5_000, 5_000, 5_000);
        let plan = JobPlan::build(&p, MulMethod::Cuboid(CuboidSpec::new(1, 1, 5)), &laptop());

        // Local-mult deps are the task's routed operand blocks, copy 0.
        let mult = plan.stage(Phase::LocalMult).unwrap();
        let dep_sets = plan.task_dependencies(Phase::LocalMult);
        assert_eq!(dep_sets.len(), mult.tasks.len());
        for (task, deps) in mult.tasks.iter().zip(&dep_sets) {
            assert_eq!(deps.len(), task.inputs.len(), "operand moves are distinct");
            for m in &task.inputs {
                assert!(deps.contains(&BlockDep {
                    operand: m.operand,
                    id: m.id,
                    copy: 0,
                }));
            }
            assert!(task.producer_tasks().is_empty(), "no C inputs here");
        }

        // Aggregation deps carry the producer copy index, and the
        // producer-task view recovers exactly those mult-task indices.
        let agg = plan.stage(Phase::Aggregation).unwrap();
        for task in &agg.tasks {
            let deps = task.dependencies();
            assert_eq!(deps.len(), task.inputs.len());
            let producers = task.producer_tasks();
            for m in &task.inputs {
                assert_eq!(m.operand, Operand::C);
                assert!(producers.contains(&(m.copy as usize)));
                assert!((m.copy as usize) < mult.tasks.len());
            }
        }

        // A phase the plan does not stage has no dependency sets.
        assert!(plan.task_dependencies(Phase::Rebalance).is_empty());
    }

    #[test]
    fn rmm_voxel_dependencies_deduplicate_shared_blocks() {
        // RMM routes one move per voxel-operand pair; a bucket with two
        // voxels sharing an A block still depends on that block once.
        let p = MatmulProblem::dense(5_000, 5_000, 5_000);
        let plan = JobPlan::build(&p, MulMethod::Rmm, &laptop());
        let mult = plan.stage(Phase::LocalMult).unwrap();
        let mut saw_dedup = false;
        for task in &mult.tasks {
            let deps = task.dependencies();
            assert!(deps.len() <= task.inputs.len());
            if deps.len() < task.inputs.len() {
                saw_dedup = true;
            }
        }
        assert!(saw_dedup, "some bucket must share an operand block");
    }

    #[test]
    fn deterministic_plans() {
        let p = MatmulProblem::dense(20_000, 20_000, 20_000);
        let cfg = ClusterConfig::paper_cluster();
        let a = JobPlan::build(&p, MulMethod::CuboidAuto, &cfg);
        let b = JobPlan::build(&p, MulMethod::CuboidAuto, &cfg);
        assert_eq!(
            a.phase_comm(Phase::Repartition),
            b.phase_comm(Phase::Repartition)
        );
        assert_eq!(a.stages.len(), b.stages.len());
        for (sa, sb) in a.stages.iter().zip(b.stages.iter()) {
            assert_eq!(sa.tasks.len(), sb.tasks.len());
        }
    }
}
