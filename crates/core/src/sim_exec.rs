//! The three-step distributed multiplication pipeline, simulated at paper
//! scale (§2.2, Fig. 4).
//!
//! A multiplication job is three Spark-style stages:
//!
//! 1. **matrix repartition** — map tasks read the operands from HDFS and
//!    write the *replicated* copies into the shuffle (`Q·|A| + P·|B|`
//!    bytes; BMM broadcasts B instead);
//! 2. **local multiplication** — one task per (non-empty) cuboid fetches
//!    its blocks and multiplies them, on the CPU or through Algorithm 1 on
//!    the node's GPU;
//! 3. **matrix aggregation** — only when `R > 1`: intermediate C blocks are
//!    shuffled by `(i, j)` and reduced (`R·|C|` bytes).
//!
//! Nothing is materialized: each task is a byte/FLOP summary executed by
//! [`SimCluster`] against its resource models, which is what lets the
//! harness replay the paper's 80 GB-to-multi-TB workloads.

use crate::cuboid::CuboidGrid;
use crate::gpu_local;
use crate::methods::{MulMethod, ResolvedMethod};
use crate::optimizer::OptimizerConfig;
use crate::problem::MatmulProblem;
use crate::subcuboid::CuboidSides;
use distme_cluster::{ComputeWork, JobError, JobStats, Phase, SimCluster, SimTask};
use distme_gpu::GpuWork;

/// Fraction of a *resident* intermediate output that actually occupies the
/// task heap: Spark's external sorter spills part of a materialized
/// partition before the heap limit, so a legacy (MatFast-style) CPMM task
/// holding |C| dies once ~75% of |C| exceeds θt — calibrated so Fig. 7(a)'s
/// MatFast survives 30K (|C| = 7.2 GB) and O.O.M.s at 40K (12.8 GB).
pub const RESIDENT_OUTPUT_FRACTION: f64 = 0.75;

/// Simulates `problem` with `method` on `cluster` (GPU is used when the
/// cluster has one), returning per-phase statistics.
///
/// # Errors
/// Propagates the cluster's failure modes — the O.O.M. / T.O. / E.D.C. /
/// too-many-tasks annotations of Figs. 6–8.
pub fn simulate(
    cluster: &mut SimCluster,
    problem: &MatmulProblem,
    method: MulMethod,
) -> Result<JobStats, JobError> {
    let resolved = ResolvedMethod::resolve(
        method,
        problem,
        &OptimizerConfig::from_cluster(cluster.config()),
    );
    simulate_resolved(cluster, problem, &resolved)
}

/// [`simulate`] with a pre-resolved method (used by the parameter-sweep
/// benches of Fig. 9).
pub fn simulate_resolved(
    cluster: &mut SimCluster,
    problem: &MatmulProblem,
    resolved: &ResolvedMethod,
) -> Result<JobStats, JobError> {
    cluster.start_job();
    let cfg = *cluster.config();
    let use_gpu = cfg.gpu.is_some();
    let grid = CuboidGrid::new(problem, resolved.spec);

    let a_total = problem.a.total_bytes();
    let b_total = problem.b.total_bytes();
    let c_total = problem.c.total_bytes();
    let ab = problem.a_block_bytes();
    let bb = problem.b_block_bytes();
    let cb = problem.c_block_bytes();
    let fpv = problem.flops_per_voxel();
    let sparse = problem.uses_sparse_kernels();

    // ---------------- Stage 1: matrix repartition (map side) -------------
    let rep_a = grid.a_replication() as u64 * a_total;
    let rep_b = if resolved.broadcast_b {
        0
    } else {
        grid.b_replication() as u64 * b_total
    };
    let rep_total = scale(
        rep_a + rep_b + resolved.pre_shuffle_bytes,
        resolved.ser_overhead,
    );
    let input_blocks = problem.a.num_blocks() + problem.b.num_blocks();
    let t_map = (cfg.total_slots() as u64).min(input_blocks).max(1);
    let map_task = |share: u64, read: u64| SimTask {
        shuffle_in_bytes: 0,
        local_read_bytes: read,
        compute: ComputeWork::None,
        shuffle_out_bytes: share,
        local_write_bytes: 0,
        mem_bytes: 4 * ab.max(bb),
    };
    let map_tasks: Vec<SimTask> = (0..t_map)
        .map(|i| {
            map_task(
                split_share(rep_total, t_map, i),
                split_share(a_total + b_total, t_map, i),
            )
        })
        .collect();
    let s1 = cluster.run_stage(&map_tasks, 0)?;

    // ---------------- Stage 2: local multiplication ----------------------
    let broadcast = if resolved.broadcast_b { b_total } else { 0 };
    let mut mult_tasks: Vec<SimTask> = Vec::new();
    if resolved.voxel_hash {
        // RMM: voxels hashed over `tasks` buckets; no communication
        // sharing — each voxel fetches its own pair of blocks and ships
        // its own intermediate block.
        let t = resolved.tasks.min(problem.voxels()).max(1);
        let voxels = problem.voxels();
        // With K = 1 every voxel's product is final — nothing is shuffled
        // to an aggregation stage (no k-axis to reduce over).
        let k_depth = problem.dims().2;
        for idx in 0..t {
            let vox = split_share(voxels, t, idx);
            let in_bytes = scale(vox * (ab + bb), resolved.ser_overhead);
            let out_bytes = if k_depth > 1 {
                scale(vox * cb, resolved.ser_overhead)
            } else {
                0
            };
            let flops = vox as f64 * fpv;
            let compute = if use_gpu {
                // §6.2: "RMM cannot perform cuboid-level GPU computation,
                // but simple block-level GPU computation due to its hash
                // partitioning" — no C residence, one stream.
                ComputeWork::Gpu(GpuWork {
                    h2d_bytes: in_bytes,
                    d2h_bytes: out_bytes,
                    dense_flops: if sparse { 0.0 } else { flops },
                    sparse_flops: if sparse { flops } else { 0.0 },
                    kernel_calls: vox,
                    streams: 1,
                })
            } else {
                ComputeWork::Cpu { flops }
            };
            mult_tasks.push(SimTask {
                shuffle_in_bytes: in_bytes,
                local_read_bytes: 0,
                compute,
                shuffle_out_bytes: out_bytes,
                local_write_bytes: 0,
                // An RMM task iterates its voxels sequentially — only a
                // few blocks are live at once (which is precisely why RMM
                // "can process without out of memory", §2.2.4).
                mem_bytes: 3 * (ab + bb + cb)
                    + if resolved.output_resident {
                        (out_bytes as f64 * RESIDENT_OUTPUT_FRACTION) as u64
                    } else {
                        0
                    },
            });
        }
    } else {
        for cuboid in grid.cuboids() {
            let a_bytes = cuboid.a_blocks() * ab;
            let b_bytes = cuboid.b_blocks() * bb;
            let c_bytes = cuboid.c_blocks() * cb;
            let flops = cuboid.voxels() as f64 * fpv;
            let shuffle_in = scale(
                a_bytes + if resolved.broadcast_b { 0 } else { b_bytes },
                resolved.ser_overhead,
            );
            // Memory model: a broadcast B is stored once per node and
            // shared (checked against node memory by the executor).
            // Intermediate C blocks (R > 1) stream into the shuffle as
            // they are produced; *final* C blocks (R = 1) are collected in
            // the task before being emitted, so the whole C side is
            // resident — which is exactly why BMM O.O.M.s at
            // 750K x 1K x 750K (a 6 GB C row per task) while surviving
            // 500K (4 GB), Fig. 6(c). Legacy systems also hold
            // intermediate C resident (`output_resident`).
            // Output residency: a BMM (mapmm-style) task computes its
            // whole final output row-partition inside the map call before
            // writing — the 6 GB C row that kills BMM at 750K x 1K x 750K
            // (Fig. 6(c)). Shuffle-based methods emit C blocks one at a
            // time; MatFast's naive CPMM additionally materializes most of
            // its intermediate |C| (see RESIDENT_OUTPUT_FRACTION).
            let resident_c = if resolved.broadcast_b && resolved.spec.r == 1 {
                c_bytes
            } else if resolved.output_resident {
                (c_bytes as f64 * RESIDENT_OUTPUT_FRACTION) as u64
            } else {
                cb
            };
            let mem = a_bytes
                + if resolved.broadcast_b { 0 } else { b_bytes }
                + resident_c;
            let compute = if use_gpu {
                let gpu_cfg = cfg.gpu.expect("use_gpu implies config");
                let sides = CuboidSides::of(&cuboid, ab, bb, cb);
                match gpu_local::plan_work(&sides, gpu_cfg.task_mem_bytes, flops, sparse) {
                    // §5: the plan generator produces "a physical plan that
                    // can be executed in either CPU or GPU" — pick the GPU
                    // only when its estimated time (PCI-E + kernels) beats
                    // the CPU kernel. Data-movement-dominated operators
                    // (GNMF's skinny products) stay on the CPU.
                    Some((_, work)) => {
                        let kernel_rate = if sparse {
                            gpu_cfg.sparse_flops_per_sec
                        } else {
                            gpu_cfg.kernel_flops_per_sec
                        };
                        let gpu_secs = work.h2d_bytes as f64 / gpu_cfg.h2d_bytes_per_sec
                            + flops / kernel_rate
                            + work.d2h_bytes as f64 / gpu_cfg.d2h_bytes_per_sec;
                        let cpu_secs = flops / cfg.slot_flops_per_sec();
                        if gpu_secs < cpu_secs || !resolved.gpu_cost_based {
                            ComputeWork::Gpu(work)
                        } else {
                            ComputeWork::Cpu { flops }
                        }
                    }
                    // Cuboid unusable on the GPU: CPU fallback.
                    None => ComputeWork::Cpu { flops },
                }
            } else {
                ComputeWork::Cpu { flops }
            };
            // Final C is consumed by a count-style action (the paper does
            // not pay an HDFS write in its matmul timings), so R = 1
            // produces no writes at all.
            let shuffle_out = if resolved.spec.r > 1 {
                scale(c_bytes, resolved.ser_overhead)
            } else {
                0
            };
            let local_write = 0;
            mult_tasks.push(SimTask {
                shuffle_in_bytes: shuffle_in,
                local_read_bytes: 0,
                compute,
                shuffle_out_bytes: shuffle_out,
                local_write_bytes: local_write,
                mem_bytes: mem,
            });
        }
    }
    let s2 = cluster.run_stage(&mult_tasks, broadcast)?;

    // ---------------- Stage 3: matrix aggregation ------------------------
    let needs_aggregation = resolved.spec.r > 1;
    let s3 = if needs_aggregation {
        let r = grid.c_replication() as u64;
        let c_blocks = problem.c.num_blocks();
        let t_agg = c_blocks
            .min((cfg.total_slots() as u64).max(resolved.spec.count()))
            .max(1);
        let agg_tasks: Vec<SimTask> = (0..t_agg)
            .map(|i| {
                let in_bytes = scale(split_share(r * c_total, t_agg, i), resolved.ser_overhead);
                let out_bytes = split_share(c_total, t_agg, i);
                // One add per element per extra copy.
                let adds = (r - 1) as f64 * split_share(problem.c.elements(), t_agg, i) as f64;
                SimTask {
                    shuffle_in_bytes: in_bytes,
                    local_read_bytes: 0,
                    compute: ComputeWork::Cpu { flops: adds },
                    shuffle_out_bytes: 0,
                    // Aggregated C is consumed, not written back to HDFS.
                    local_write_bytes: 0,
                    mem_bytes: out_bytes + cb,
                }
            })
            .collect();
        Some(cluster.run_stage(&agg_tasks, 0)?)
    } else {
        None
    };

    // ---------------- Assemble statistics --------------------------------
    let mut stats = JobStats {
        elapsed_secs: cluster.job_elapsed_secs(),
        peak_task_mem_bytes: s1
            .peak_task_mem_bytes
            .max(s2.peak_task_mem_bytes)
            .max(s3.map_or(0, |s| s.peak_task_mem_bytes)),
        intermediate_bytes: s1.shuffle_write_bytes + s2.shuffle_write_bytes,
        gpu_utilization: s2.gpu_utilization,
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = distme_cluster::PhaseStats {
        secs: s1.secs,
        shuffle_bytes: s1.shuffle_write_bytes,
        cross_node_bytes: s2.cross_node_bytes,
        // Communication accounting follows Table 2: a broadcast costs
        // `T·|B|` (every executor process fetches and deserializes its own
        // copy), even though the torrent protocol moves only one copy per
        // node over the wire (the *time* model uses the latter).
        broadcast_bytes: if resolved.broadcast_b {
            b_total * mult_tasks.len() as u64
        } else {
            0
        },
        tasks: s1.tasks,
    };
    *stats.phase_mut(Phase::LocalMult) = distme_cluster::PhaseStats {
        secs: s2.secs,
        shuffle_bytes: 0,
        cross_node_bytes: 0,
        broadcast_bytes: 0,
        tasks: s2.tasks,
    };
    if let Some(s3) = s3 {
        *stats.phase_mut(Phase::Aggregation) = distme_cluster::PhaseStats {
            secs: s3.secs,
            shuffle_bytes: s3.shuffle_read_bytes,
            cross_node_bytes: s3.cross_node_bytes,
            broadcast_bytes: 0,
            tasks: s3.tasks,
        };
    }
    Ok(stats)
}

/// Applies a serialization-format overhead factor to a byte volume.
fn scale(bytes: u64, factor: f64) -> u64 {
    if factor == 1.0 {
        bytes
    } else {
        (bytes as f64 * factor) as u64
    }
}

/// Splits `total` into `parts` near-equal integer shares; share `idx` gets
/// the remainder spread over the first `total % parts` parts.
fn split_share(total: u64, parts: u64, idx: u64) -> u64 {
    let base = total / parts;
    let rem = total % parts;
    base + u64::from(idx < rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_cluster::ClusterConfig;

    fn paper_sim() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    fn paper_sim_gpu() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster_gpu())
    }

    #[test]
    fn split_share_conserves_total() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1u64, 3, 7, 13] {
                let sum: u64 = (0..parts).map(|i| split_share(total, parts, i)).sum();
                assert_eq!(sum, total, "total {total}, parts {parts}");
            }
        }
    }

    #[test]
    fn cuboidmm_beats_all_baselines_at_70k() {
        // Fig. 6(a)/(d) at N = 70K: CuboidMM wins on elapsed time and
        // communication; BMM/CPMM/RMM all succeed at this size.
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let mut results = Vec::new();
        for m in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
        ] {
            let mut sim = paper_sim_gpu();
            let stats = simulate(&mut sim, &p, m).unwrap_or_else(|e| {
                panic!("{} failed at 70K: {e}", m.name());
            });
            results.push((m.name(), stats));
        }
        let cuboid = &results[3].1;
        for (name, stats) in &results[..3] {
            assert!(
                cuboid.elapsed_secs < stats.elapsed_secs,
                "CuboidMM ({:.0}s) not faster than {name} ({:.0}s)",
                cuboid.elapsed_secs,
                stats.elapsed_secs
            );
            assert!(
                cuboid.communication_bytes() < stats.communication_bytes(),
                "CuboidMM comm not lower than {name}"
            );
        }
    }

    #[test]
    fn bmm_ooms_on_large_general_matrices() {
        // Fig. 6(a): BMM fails with O.O.M. when N > 80K (|B| no longer fits
        // beside a task's A share).
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        let err = simulate(&mut paper_sim(), &p, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn cpmm_ooms_on_two_large_dimensions() {
        // Fig. 6(c): CPMM fails for N x 1K x N at N = 500K (|C| per task).
        let p = MatmulProblem::dense(500_000, 1_000, 500_000);
        let err = simulate(&mut paper_sim(), &p, MulMethod::Cpmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn rmm_never_ooms_but_is_slow() {
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        let mut rmm_sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
        let rmm = simulate(&mut rmm_sim, &p, MulMethod::Rmm).unwrap();
        let cuboid = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(rmm.elapsed_secs > 2.0 * cuboid.elapsed_secs);
        assert!(rmm.communication_bytes() > 5 * cuboid.communication_bytes());
    }

    #[test]
    fn cuboidmm_runs_where_everything_else_fails() {
        // Fig. 6(c) at 750K x 1K x 750K: BMM/CPMM O.O.M., RMM T.O.,
        // CuboidMM succeeds.
        let p = MatmulProblem::dense(750_000, 1_000, 750_000);
        assert_eq!(
            simulate(&mut paper_sim_gpu(), &p, MulMethod::Bmm)
                .unwrap_err()
                .annotation(),
            "O.O.M."
        );
        assert_eq!(
            simulate(&mut paper_sim_gpu(), &p, MulMethod::Cpmm)
                .unwrap_err()
                .annotation(),
            "O.O.M."
        );
        let rmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Rmm);
        assert!(rmm.is_err(), "RMM should T.O. at 750K: {rmm:?}");
        let ok = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto);
        assert!(ok.is_ok(), "CuboidMM must survive 750K: {ok:?}");
    }

    #[test]
    fn aggregation_skipped_when_r_is_one() {
        let p = MatmulProblem::dense(500_000, 1_000, 500_000);
        let mut sim = SimCluster::new(ClusterConfig::paper_cluster().with_timeout(f64::MAX));
        let stats = simulate(&mut sim, &p, MulMethod::CuboidAuto).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).secs, 0.0);
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
    }

    #[test]
    fn bmm_has_no_aggregation_and_broadcast_bytes() {
        let p = MatmulProblem::dense(30_000, 30_000, 30_000);
        let stats = simulate(&mut paper_sim(), &p, MulMethod::Bmm).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
        // Table 2 accounting: T·|B| with T = I = 30 tasks.
        assert_eq!(stats.total_broadcast_bytes(), 30 * p.b.total_bytes());
    }

    #[test]
    fn gpu_strictly_helps_compute_bound_jobs() {
        let p = MatmulProblem::dense(40_000, 40_000, 40_000);
        let cpu = simulate(&mut paper_sim(), &p, MulMethod::CuboidAuto).unwrap();
        let gpu = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(
            gpu.elapsed_secs < cpu.elapsed_secs,
            "GPU {:.0}s vs CPU {:.0}s",
            gpu.elapsed_secs,
            cpu.elapsed_secs
        );
        assert!(gpu.gpu_utilization.is_some());
        assert!(cpu.gpu_utilization.is_none());
    }

    #[test]
    fn communication_matches_cost_model_shape() {
        // Measured repartition bytes must equal Q|A| + P|B| exactly for a
        // shuffled cuboid method.
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let spec = crate::cuboid::CuboidSpec::new(4, 7, 4);
        let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
        let stats = simulate(&mut sim, &p, MulMethod::Cuboid(spec)).unwrap();
        let expect_rep = 7 * p.a.total_bytes() + 4 * p.b.total_bytes();
        assert_eq!(stats.phase(Phase::Repartition).shuffle_bytes, expect_rep);
        let expect_agg = 4 * p.c.total_bytes();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, expect_agg);
    }

    #[test]
    fn crmm_pays_reblocking_but_beats_rmm() {
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let crmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Crmm).unwrap();
        let rmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Rmm).unwrap();
        let cuboid = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(crmm.communication_bytes() < rmm.communication_bytes());
        assert!(cuboid.communication_bytes() < crmm.communication_bytes());
    }

    #[test]
    fn deterministic_simulation() {
        let p = MatmulProblem::dense(50_000, 50_000, 50_000);
        let a = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        let b = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert_eq!(a, b);
    }
}
