//! The simulated backend: lowers a [`JobPlan`] onto [`SimCluster`].
//!
//! All plan construction — grid enumeration, the BMM broadcast special
//! case, the `R > 1` aggregation stage, θt/θg admission — lives in
//! [`crate::plan`]. This module only walks the plan's stages, hands each
//! stage's task *summaries* to the simulated cluster's resource models,
//! and assembles [`JobStats`]. Communication bytes are read back from the
//! plan's *routing* view, so they are bit-identical to what the real
//! executor's shuffle ledger measures for the same plan.
//!
//! Nothing is materialized: each task is a byte/FLOP summary, which is
//! what lets the harness replay the paper's 80 GB-to-multi-TB workloads.

use crate::methods::{MulMethod, ResolvedMethod};
use crate::plan::JobPlan;
use crate::problem::MatmulProblem;
use distme_cluster::{JobError, JobStats, Phase, SimCluster, SimTask};

pub use crate::plan::RESIDENT_OUTPUT_FRACTION;

/// Simulates `problem` with `method` on `cluster` (GPU is used when the
/// cluster has one), returning per-phase statistics.
///
/// # Errors
/// Propagates the cluster's failure modes — the O.O.M. / T.O. / E.D.C. /
/// too-many-tasks annotations of Figs. 6–8.
pub fn simulate(
    cluster: &mut SimCluster,
    problem: &MatmulProblem,
    method: MulMethod,
) -> Result<JobStats, JobError> {
    let plan = JobPlan::build(problem, method, cluster.config()).at_epoch(cluster.epoch());
    simulate_plan(cluster, &plan)
}

/// [`simulate`] with a pre-resolved method (used by the parameter-sweep
/// benches of Fig. 9).
pub fn simulate_resolved(
    cluster: &mut SimCluster,
    problem: &MatmulProblem,
    resolved: &ResolvedMethod,
) -> Result<JobStats, JobError> {
    let plan =
        JobPlan::from_resolved(problem, resolved, cluster.config()).at_epoch(cluster.epoch());
    simulate_plan(cluster, &plan)
}

/// Lowers each stage of `plan` onto the cluster's resource models.
///
/// # Errors
/// Propagates the cluster's failure modes (O.O.M., T.O., E.D.C., ...).
pub fn simulate_plan(cluster: &mut SimCluster, plan: &JobPlan) -> Result<JobStats, JobError> {
    if plan.epoch != cluster.epoch() {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "plan built at membership epoch {} is stale: the cluster is now at epoch {}",
                plan.epoch,
                cluster.epoch()
            ),
        });
    }
    cluster.start_job();
    let mut stats = JobStats::default();
    for stage in &plan.stages {
        let summaries: Vec<SimTask> = stage.tasks.iter().map(|t| t.summary).collect();
        // The broadcast rides on the local-mult stage: the time model uses
        // torrent semantics (one wire copy per node, checked against node
        // memory), while the byte accounting below follows Table 2.
        let broadcast = if stage.phase == Phase::LocalMult {
            plan.broadcast.map_or(0, |b| b.bytes_per_copy)
        } else {
            0
        };
        let outcome = cluster.run_stage(&summaries, broadcast)?;
        stats.peak_task_mem_bytes = stats.peak_task_mem_bytes.max(outcome.peak_task_mem_bytes);
        if stage.phase != Phase::Aggregation {
            stats.intermediate_bytes += outcome.shuffle_write_bytes;
        }
        if stage.phase == Phase::LocalMult {
            stats.gpu_utilization = outcome.gpu_utilization;
        }
        let ps = stats.phase_mut(stage.phase);
        ps.secs = outcome.secs;
        ps.tasks = outcome.tasks;
    }
    // Communication is read from the plan's routing, not the resource
    // models — the same numbers the real executor charges to its ledger.
    for phase in Phase::ALL {
        let comm = plan.phase_comm(phase);
        let ps = stats.phase_mut(phase);
        ps.shuffle_bytes = comm.shuffle_bytes;
        ps.cross_node_bytes = comm.cross_node_bytes;
        ps.broadcast_bytes = comm.broadcast_bytes;
    }
    stats.elapsed_secs = cluster.job_elapsed_secs();
    Ok(stats)
}

/// [`simulate`] under the pipelined executor's overlap model.
///
/// # Errors
/// See [`simulate`].
pub fn simulate_pipelined(
    cluster: &mut SimCluster,
    problem: &MatmulProblem,
    method: MulMethod,
) -> Result<JobStats, JobError> {
    let plan = JobPlan::build(problem, method, cluster.config()).at_epoch(cluster.epoch());
    simulate_plan_pipelined(cluster, &plan)
}

/// Simulates `plan` as the pipelined executor would run it: the barrier
/// simulation's resource model, with the communication time the streaming
/// stage hides subtracted afterwards. Communication *bytes* are untouched
/// — the pipelined executor changes when deliveries happen, never the
/// routing view they are charged from — so sim/real byte parity holds for
/// this path exactly as for the barrier one.
///
/// The overlap model mirrors the real streamed stage:
/// * repartition hides behind local mult up to one priming panel — with
///   `panels` k-steps per task, the first panel's fetch cannot overlap
///   anything (Algorithm 1's pipeline fill), the rest stream behind
///   compute;
/// * aggregation hides behind the mult tail: with `n` gated reduce
///   waves, all but the last finish inside the fused window.
///
/// # Errors
/// See [`simulate`].
pub fn simulate_plan_pipelined(
    cluster: &mut SimCluster,
    plan: &JobPlan,
) -> Result<JobStats, JobError> {
    use crate::plan::TaskWork;
    let mut stats = simulate_plan(cluster, plan)?;
    let rep = stats.phase(Phase::Repartition).secs;
    let mult = stats.phase(Phase::LocalMult).secs;
    let agg = stats.phase(Phase::Aggregation).secs;

    let mut panels = 1u64;
    let mut hits = 0u64;
    let mut stalls = 0u64;
    if let Some(stage) = plan.stage(Phase::LocalMult) {
        for t in &stage.tasks {
            let p = match &t.work {
                TaskWork::Cuboid(c) => u64::from(c.k1.saturating_sub(c.k0)).max(1),
                _ => 1,
            };
            panels = panels.max(p);
            // Each task stalls once priming its first panel; every later
            // panel lands behind the double-buffered prefetch.
            stalls += 1;
            hits += p - 1;
        }
    }
    let prime = rep / panels as f64;
    let hidden_rep = (rep - prime).min(mult).max(0.0);
    let n_agg = plan.stage(Phase::Aggregation).map_or(0, |s| s.tasks.len());
    let hidden_agg = if n_agg > 0 {
        agg * (n_agg - 1) as f64 / n_agg as f64
    } else {
        0.0
    };
    let hidden = hidden_rep + hidden_agg;

    stats.phase_mut(Phase::Repartition).secs = rep - hidden_rep;
    stats.phase_mut(Phase::Aggregation).secs = agg - hidden_agg;
    stats.elapsed_secs = (stats.elapsed_secs - hidden).max(mult);
    let comm = rep + agg;
    stats.overlap_ratio = if comm > 0.0 {
        Some((hidden / comm).clamp(0.0, 1.0))
    } else {
        None
    };
    stats.prefetch_hits = hits;
    stats.prefetch_stalls = stalls;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distme_cluster::ClusterConfig;

    fn paper_sim() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster())
    }

    fn paper_sim_gpu() -> SimCluster {
        SimCluster::new(ClusterConfig::paper_cluster_gpu())
    }

    #[test]
    fn cuboidmm_beats_all_baselines_at_70k() {
        // Fig. 6(a)/(d) at N = 70K: CuboidMM wins on elapsed time and
        // communication; BMM/CPMM/RMM all succeed at this size.
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let mut results = Vec::new();
        for m in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
        ] {
            let mut sim = paper_sim_gpu();
            let stats = simulate(&mut sim, &p, m).unwrap_or_else(|e| {
                panic!("{} failed at 70K: {e}", m.name());
            });
            results.push((m.name(), stats));
        }
        let cuboid = &results[3].1;
        for (name, stats) in &results[..3] {
            assert!(
                cuboid.elapsed_secs < stats.elapsed_secs,
                "CuboidMM ({:.0}s) not faster than {name} ({:.0}s)",
                cuboid.elapsed_secs,
                stats.elapsed_secs
            );
            assert!(
                cuboid.communication_bytes() < stats.communication_bytes(),
                "CuboidMM comm not lower than {name}"
            );
        }
    }

    #[test]
    fn pipelined_sim_hides_communication_but_not_bytes() {
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        for m in [MulMethod::Cpmm, MulMethod::CuboidAuto, MulMethod::Rmm] {
            let barrier = simulate(&mut paper_sim_gpu(), &p, m).unwrap();
            let streamed = simulate_pipelined(&mut paper_sim_gpu(), &p, m).unwrap();
            assert!(
                streamed.elapsed_secs < barrier.elapsed_secs,
                "{}: {} vs {}",
                m.name(),
                streamed.elapsed_secs,
                barrier.elapsed_secs
            );
            assert!(streamed.elapsed_secs >= barrier.phase(Phase::LocalMult).secs);
            let ratio = streamed.overlap_ratio.unwrap();
            assert!(ratio > 0.0 && ratio <= 1.0, "{}: ratio {ratio}", m.name());
            assert!(streamed.prefetch_stalls > 0);
            // The routing view — and therefore every byte column — is the
            // barrier plan's, untouched.
            for phase in Phase::ALL {
                assert_eq!(
                    barrier.phase(phase).shuffle_bytes,
                    streamed.phase(phase).shuffle_bytes
                );
                assert_eq!(
                    barrier.phase(phase).cross_node_bytes,
                    streamed.phase(phase).cross_node_bytes
                );
                assert_eq!(
                    barrier.phase(phase).broadcast_bytes,
                    streamed.phase(phase).broadcast_bytes
                );
            }
            assert_eq!(
                barrier.communication_bytes(),
                streamed.communication_bytes()
            );
        }
    }

    #[test]
    fn bmm_ooms_on_large_general_matrices() {
        // Fig. 6(a): BMM fails with O.O.M. when N > 80K (|B| no longer fits
        // beside a task's A share).
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        let err = simulate(&mut paper_sim(), &p, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn cpmm_ooms_on_two_large_dimensions() {
        // Fig. 6(c): CPMM fails for N x 1K x N at N = 500K (|C| per task).
        let p = MatmulProblem::dense(500_000, 1_000, 500_000);
        let err = simulate(&mut paper_sim(), &p, MulMethod::Cpmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn rmm_never_ooms_but_is_slow() {
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        let mut rmm_sim =
            SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
        let rmm = simulate(&mut rmm_sim, &p, MulMethod::Rmm).unwrap();
        let cuboid = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(rmm.elapsed_secs > 2.0 * cuboid.elapsed_secs);
        assert!(rmm.communication_bytes() > 5 * cuboid.communication_bytes());
    }

    #[test]
    fn cuboidmm_runs_where_everything_else_fails() {
        // Fig. 6(c) at 750K x 1K x 750K: BMM/CPMM O.O.M., RMM T.O.,
        // CuboidMM succeeds.
        let p = MatmulProblem::dense(750_000, 1_000, 750_000);
        assert_eq!(
            simulate(&mut paper_sim_gpu(), &p, MulMethod::Bmm)
                .unwrap_err()
                .annotation(),
            "O.O.M."
        );
        assert_eq!(
            simulate(&mut paper_sim_gpu(), &p, MulMethod::Cpmm)
                .unwrap_err()
                .annotation(),
            "O.O.M."
        );
        let rmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Rmm);
        assert!(rmm.is_err(), "RMM should T.O. at 750K: {rmm:?}");
        let ok = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto);
        assert!(ok.is_ok(), "CuboidMM must survive 750K: {ok:?}");
    }

    #[test]
    fn aggregation_skipped_when_r_is_one() {
        let p = MatmulProblem::dense(500_000, 1_000, 500_000);
        let mut sim = SimCluster::new(ClusterConfig::paper_cluster().with_timeout(f64::MAX));
        let stats = simulate(&mut sim, &p, MulMethod::CuboidAuto).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).secs, 0.0);
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
    }

    #[test]
    fn bmm_has_no_aggregation_and_broadcast_bytes() {
        let p = MatmulProblem::dense(30_000, 30_000, 30_000);
        let stats = simulate(&mut paper_sim(), &p, MulMethod::Bmm).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
        // Table 2 accounting: T·|B| with T = I = 30 tasks.
        assert_eq!(stats.total_broadcast_bytes(), 30 * p.b.total_bytes());
    }

    #[test]
    fn gpu_strictly_helps_compute_bound_jobs() {
        let p = MatmulProblem::dense(40_000, 40_000, 40_000);
        let cpu = simulate(&mut paper_sim(), &p, MulMethod::CuboidAuto).unwrap();
        let gpu = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(
            gpu.elapsed_secs < cpu.elapsed_secs,
            "GPU {:.0}s vs CPU {:.0}s",
            gpu.elapsed_secs,
            cpu.elapsed_secs
        );
        assert!(gpu.gpu_utilization.is_some());
        assert!(cpu.gpu_utilization.is_none());
    }

    #[test]
    fn communication_matches_cost_model_shape() {
        // Measured repartition bytes must equal Q|A| + P|B| exactly for a
        // shuffled cuboid method.
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let spec = crate::cuboid::CuboidSpec::new(4, 7, 4);
        let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
        let stats = simulate(&mut sim, &p, MulMethod::Cuboid(spec)).unwrap();
        let expect_rep = 7 * p.a.total_bytes() + 4 * p.b.total_bytes();
        assert_eq!(stats.phase(Phase::Repartition).shuffle_bytes, expect_rep);
        let expect_agg = 4 * p.c.total_bytes();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, expect_agg);
    }

    #[test]
    fn crmm_pays_reblocking_but_beats_rmm() {
        let p = MatmulProblem::dense(70_000, 70_000, 70_000);
        let crmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Crmm).unwrap();
        let rmm = simulate(&mut paper_sim_gpu(), &p, MulMethod::Rmm).unwrap();
        let cuboid = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert!(crmm.communication_bytes() < rmm.communication_bytes());
        assert!(cuboid.communication_bytes() < crmm.communication_bytes());
    }

    #[test]
    fn stale_epoch_plans_are_rejected() {
        let p = MatmulProblem::dense(20_000, 20_000, 20_000);
        let mut sim = paper_sim();
        let plan = JobPlan::build(&p, MulMethod::CuboidAuto, sim.config()); // epoch 0
        assert!(simulate_plan(&mut sim, &plan).is_ok());
        sim.scale_to(12);
        let err = simulate_plan(&mut sim, &plan).unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");
    }

    #[test]
    fn deterministic_simulation() {
        let p = MatmulProblem::dense(50_000, 50_000, 50_000);
        let a = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        let b = simulate(&mut paper_sim_gpu(), &p, MulMethod::CuboidAuto).unwrap();
        assert_eq!(a, b);
    }
}
