//! The real backend: executes a [`JobPlan`] with materialized blocks
//! (laptop scale).
//!
//! All plan construction lives in [`crate::plan`]; this module only
//! materializes each task's blocks on [`LocalCluster`] worker threads
//! (under the θt budget) and charges the shuffle ledger **from the plan's
//! routing** — the same [`crate::plan::BlockMove`]s whose bytes the
//! simulator reports. That is what makes the simulated numbers
//! trustworthy: the communication volumes the simulator charges are
//! bit-identical to the volumes this executor measures on the same plans
//! (enforced by `tests/plan_parity.rs`), and the computed product is
//! compared against the single-node reference by the test suite.

use crate::cuboid::Cuboid;
use crate::gpu_local;
use crate::methods::{MulMethod, ResolvedMethod};
use crate::plan::{JobPlan, TaskWork};
use crate::problem::MatmulProblem;
use distme_cluster::{JobError, JobStats, LocalCluster, Phase, PhaseStats, TaskError};
use distme_matrix::{codec, kernels, Block, BlockId, BlockMatrix, DenseBlock};
use std::collections::BTreeMap;
use std::time::Instant;

/// Options for real execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealExecOptions {
    /// When set, local multiplication runs through Algorithm 1's subcuboid
    /// schedule with this per-task device-memory budget θg (the schedule's
    /// arithmetic runs on the CPU; see `distme-gpu`'s crate docs).
    pub gpu_task_mem_bytes: Option<u64>,
}

/// Multiplies `a × b` distributed over `cluster` with `method`.
///
/// # Errors
/// * [`JobError::TaskFailed`] on shape mismatch;
/// * [`JobError::OutOfMemory`] when a task exceeds θt (or θg);
/// * scheduler errors per [`LocalCluster::run_stage`].
pub fn multiply(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
) -> Result<(BlockMatrix, JobStats), JobError> {
    multiply_with(cluster, a, b, method, RealExecOptions::default())
}

/// [`multiply`] with explicit options.
pub fn multiply_with(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = problem_of(a, b)?;
    let plan = JobPlan::build(&problem, method, cluster.config());
    execute_plan(cluster, a, b, &plan, opts)
}

/// [`multiply`] with a pre-resolved method (system profiles with legacy
/// execution semantics, parameter sweeps).
pub fn multiply_resolved(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    resolved: &ResolvedMethod,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = problem_of(a, b)?;
    let plan = JobPlan::from_resolved(&problem, resolved, cluster.config());
    execute_plan(cluster, a, b, &plan, opts)
}

fn problem_of(a: &BlockMatrix, b: &BlockMatrix) -> Result<MatmulProblem, JobError> {
    MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    })
}

/// Executes `plan` against materialized operands.
///
/// # Errors
/// See [`multiply`].
pub fn execute_plan(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    plan: &JobPlan,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = &plan.problem;
    let resolved = &plan.resolved;
    cluster.ledger().reset();

    // Broadcast variables are node-level: one shared copy per node must
    // fit. The admission check uses the *backend-local* encoded sizes (the
    // bytes this process would actually pin), not the plan's meta model.
    if resolved.broadcast_b {
        let b_encoded_total: u64 = b.blocks().map(|(_, blk)| codec::encoded_len(blk)).sum();
        if b_encoded_total > cluster.config().node_mem_bytes {
            return Err(JobError::OutOfMemory {
                task: 0,
                needed: b_encoded_total,
                budget: cluster.config().node_mem_bytes,
            });
        }
    }

    // ------------- Stage 1: repartition accounting -----------------------
    // Blocks physically stay in shared memory — the executor charges the
    // ledger with the movements the plan routed, which is exactly what the
    // simulator reports for the same plan.
    let rep_timer = Instant::now();
    for stage in &plan.stages {
        for task in &stage.tasks {
            for m in &task.inputs {
                cluster
                    .ledger()
                    .record_shuffle(stage.input_phase, m.from_node, m.to_node, m.bytes);
            }
        }
    }
    if let Some(bc) = plan.broadcast {
        // Table 2 accounting: every task fetches its own copy of B.
        cluster.ledger().record_broadcast(
            Phase::Repartition,
            bc.bytes_per_copy,
            bc.copies as usize,
        );
    }
    let rep_secs = rep_timer.elapsed().as_secs_f64();

    // ------------- Stage 2: local multiplication -------------------------
    let c_meta = problem.c;
    let mult_stage = plan.stage(Phase::LocalMult).expect("plans always multiply");
    let work: Vec<TaskWork> = mult_stage.tasks.iter().map(|t| t.work.clone()).collect();
    let broadcast_b = resolved.broadcast_b;
    let mult = cluster.run_stage(work, |ctx, item| {
        match item {
            TaskWork::Cuboid(cuboid) => {
                let mut in_bytes = 0u64;
                for id in cuboid.a_block_ids() {
                    if let Some(blk) = a.get(id.row, id.col) {
                        in_bytes += codec::encoded_len(blk);
                    }
                }
                if !broadcast_b {
                    for id in cuboid.b_block_ids() {
                        if let Some(blk) = b.get(id.row, id.col) {
                            in_bytes += codec::encoded_len(blk);
                        }
                    }
                }
                ctx.alloc(in_bytes)?;
                let blocks = match opts.gpu_task_mem_bytes {
                    Some(theta_g) => {
                        let res = gpu_local::execute_cuboid_real(&cuboid, a, b, &c_meta, theta_g)?;
                        res.blocks
                    }
                    None => multiply_cuboid_cpu(&cuboid, a, b, problem)?,
                };
                let mut out = Vec::with_capacity(blocks.len());
                for (id, dense) in blocks {
                    ctx.alloc(dense.mem_bytes())?;
                    out.push((id, Block::Dense(dense)));
                }
                Ok(out)
            }
            TaskWork::Voxels(voxels) => {
                // RMM: one isolated block product per voxel, no sharing.
                let mut out = Vec::with_capacity(voxels.len());
                for (i, j, k) in voxels {
                    let (Some(ab), Some(bb)) = (a.get(i, k), b.get(k, j)) else {
                        continue;
                    };
                    ctx.alloc(codec::encoded_len(ab) + codec::encoded_len(bb))?;
                    let prod = kernels::multiply(ab, bb)?;
                    ctx.alloc(prod.mem_bytes())?;
                    out.push((BlockId::new(i, j), prod));
                }
                Ok(out)
            }
            // Map and aggregation work never reaches the mult stage.
            TaskWork::MapRead | TaskWork::Aggregate(_) => Ok(Vec::new()),
        }
    })?;
    let mult_secs = mult.wall_secs;
    let mult_peak = mult.peak_task_mem_bytes;

    // ------------- Stage 3: aggregation ----------------------------------
    let agg_timer = Instant::now();
    let mut groups: BTreeMap<BlockId, Vec<Block>> = BTreeMap::new();
    for outputs in mult.outputs {
        for (id, blk) in outputs {
            groups.entry(id).or_default().push(blk);
        }
    }
    // Group the intermediate copies by the plan's aggregation tasks when
    // the plan has that stage; with R = 1 each group is a single final
    // block and one normalize task per block suffices.
    let agg_items: Vec<Vec<(BlockId, Vec<Block>)>> = match plan.stage(Phase::Aggregation) {
        Some(stage) => stage
            .tasks
            .iter()
            .map(|t| {
                let TaskWork::Aggregate(ids) = &t.work else {
                    return Vec::new();
                };
                ids.iter()
                    .filter_map(|id| groups.remove(id).map(|parts| (*id, parts)))
                    .collect()
            })
            .collect(),
        None => groups.into_iter().map(|g| vec![g]).collect(),
    };
    let agg = cluster.run_stage(agg_items, |ctx, items| {
        let mut out = Vec::with_capacity(items.len());
        for (id, parts) in items {
            let mut acc: Option<Block> = None;
            for blk in parts {
                ctx.alloc(blk.mem_bytes())?;
                acc = Some(match acc {
                    None => blk,
                    Some(prev) => prev.add(&blk)?,
                });
            }
            let block = acc.expect("groups are non-empty by construction");
            out.push((id, block.normalize()));
        }
        Ok(out)
    })?;
    let agg_secs = agg_timer.elapsed().as_secs_f64();

    let mut c = BlockMatrix::new(problem.c);
    for (id, blk) in agg.outputs.into_iter().flatten() {
        if blk.nnz() > 0 {
            c.put(id.row, id.col, blk)
                .map_err(|e| JobError::TaskFailed {
                    task: 0,
                    message: e.to_string(),
                })?;
        }
    }

    // ------------- Statistics --------------------------------------------
    let ledger = cluster.ledger();
    let agg_tasks = plan.stage(Phase::Aggregation).map_or(0, |s| s.tasks.len());
    let mut stats = JobStats {
        elapsed_secs: rep_secs + mult_secs + agg_secs,
        peak_task_mem_bytes: mult_peak.max(agg.peak_task_mem_bytes),
        intermediate_bytes: ledger.shuffle_bytes(Phase::Repartition)
            + ledger.shuffle_bytes(Phase::Aggregation),
        gpu_utilization: None,
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: rep_secs,
        shuffle_bytes: ledger.shuffle_bytes(Phase::Repartition),
        cross_node_bytes: ledger.cross_node_bytes(Phase::Repartition),
        broadcast_bytes: ledger.broadcast_bytes(Phase::Repartition),
        tasks: plan.stage(Phase::Repartition).map_or(0, |s| s.tasks.len()),
    };
    *stats.phase_mut(Phase::LocalMult) = PhaseStats {
        secs: mult_secs,
        shuffle_bytes: 0,
        cross_node_bytes: 0,
        broadcast_bytes: 0,
        tasks: mult_stage.tasks.len(),
    };
    *stats.phase_mut(Phase::Aggregation) = PhaseStats {
        secs: agg_secs,
        shuffle_bytes: ledger.shuffle_bytes(Phase::Aggregation),
        cross_node_bytes: ledger.cross_node_bytes(Phase::Aggregation),
        broadcast_bytes: 0,
        tasks: agg_tasks,
    };
    Ok((c, stats))
}

fn multiply_cuboid_cpu(
    cuboid: &Cuboid,
    a: &BlockMatrix,
    b: &BlockMatrix,
    problem: &MatmulProblem,
) -> Result<Vec<(BlockId, DenseBlock)>, TaskError> {
    let mut out = Vec::new();
    for i in cuboid.i0..cuboid.i1 {
        for j in cuboid.j0..cuboid.j1 {
            let (rows, cols) = problem.c.block_dims(i, j);
            let mut acc = DenseBlock::zeros(rows as usize, cols as usize);
            let mut any = false;
            for k in cuboid.k0..cuboid.k1 {
                let (Some(ab), Some(bb)) = (a.get(i, k), b.get(k, j)) else {
                    continue;
                };
                kernels::multiply_accumulate(&mut acc, ab, bb)?;
                any = true;
            }
            if any {
                out.push((BlockId::new(i, j), acc));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CuboidSpec;
    use distme_cluster::ClusterConfig;
    use distme_matrix::{MatrixGenerator, MatrixMeta};

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterConfig::laptop())
    }

    fn operands(bs: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix, BlockMatrix) {
        let am = MatrixMeta::sparse(5 * bs, 4 * bs, sparsity).with_block_size(bs);
        let bm = MatrixMeta::sparse(4 * bs, 3 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(11).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(22).generate(&bm).unwrap();
        let reference = a.multiply(&b).unwrap();
        (a, b, reference)
    }

    #[test]
    fn every_method_computes_the_reference_product() {
        let (a, b, reference) = operands(16, 1.0);
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
            MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)),
            MulMethod::Crmm,
        ] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method)
                .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
            let diff = prod.max_abs_diff(&reference).unwrap();
            assert!(diff < 1e-9, "{}: diff {diff}", method.name());
        }
    }

    #[test]
    fn sparse_operands_work_across_methods() {
        let (a, b, reference) = operands(16, 0.08);
        for method in [MulMethod::Cpmm, MulMethod::Rmm, MulMethod::CuboidAuto] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method).unwrap();
            assert!(
                prod.max_abs_diff(&reference).unwrap() < 1e-9,
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn gpu_schedule_matches_cpu_path() {
        let (a, b, reference) = operands(16, 1.0);
        let c = cluster();
        let opts = RealExecOptions {
            // Small θg: forces several subcuboid iterations per cuboid.
            gpu_task_mem_bytes: Some(40_000),
        };
        let (prod, _) = multiply_with(&c, &a, &b, MulMethod::CuboidAuto, opts).unwrap();
        assert!(prod.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn measured_communication_ordering_matches_table2() {
        // RMM must shuffle strictly more than CuboidMM; BMM must broadcast.
        let (a, b, _) = operands(16, 1.0);
        let mut comm = std::collections::HashMap::new();
        for method in [MulMethod::Rmm, MulMethod::CuboidAuto, MulMethod::Bmm] {
            let c = cluster();
            let (_, stats) = multiply(&c, &a, &b, method).unwrap();
            comm.insert(method.name().to_string(), stats);
        }
        assert!(
            comm["RMM"].total_shuffle_bytes() > comm["CuboidMM"].total_shuffle_bytes(),
            "RMM {} vs CuboidMM {}",
            comm["RMM"].total_shuffle_bytes(),
            comm["CuboidMM"].total_shuffle_bytes()
        );
        assert!(comm["BMM"].total_broadcast_bytes() > 0);
        assert_eq!(comm["CuboidMM"].total_broadcast_bytes(), 0);
    }

    #[test]
    fn task_memory_budget_produces_oom() {
        let (a, b, _) = operands(16, 1.0);
        let mut cfg = ClusterConfig::laptop();
        cfg.task_mem_bytes = 10_000; // smaller than one BMM task's |B|
        let c = LocalCluster::new(cfg);
        let err = multiply(&c, &a, &b, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let am = MatrixMeta::dense(32, 32).with_block_size(16);
        let bm = MatrixMeta::dense(48, 32).with_block_size(16);
        let a = MatrixGenerator::with_seed(1).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&bm).unwrap();
        assert!(matches!(
            multiply(&cluster(), &a, &b, MulMethod::CuboidAuto),
            Err(JobError::TaskFailed { .. })
        ));
    }

    #[test]
    fn aggregation_bytes_zero_when_r_is_one() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cuboid(CuboidSpec::new(2, 2, 1))).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
        // And CPMM (R = K) must aggregate.
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert!(stats.phase(Phase::Aggregation).shuffle_bytes > 0);
    }

    #[test]
    fn stats_report_intermediate_bytes() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert_eq!(
            stats.intermediate_bytes,
            stats.phase(Phase::Repartition).shuffle_bytes
                + stats.phase(Phase::Aggregation).shuffle_bytes
        );
    }

    #[test]
    fn resolution_happens_once_for_a_real_multiply() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let before = crate::optimizer::instrument::optimize_calls();
        let _ = multiply(&c, &a, &b, MulMethod::CuboidAuto).unwrap();
        assert_eq!(crate::optimizer::instrument::optimize_calls() - before, 1);
    }
}
