//! The real backend: executes a [`JobPlan`] with materialized blocks
//! (laptop scale).
//!
//! All plan construction lives in [`crate::plan`]; this module is a pure
//! plan consumer over the cluster's physical substrate:
//!
//! 1. **Ingest** — operand blocks are installed into their home nodes'
//!    stores per the plan's placement hash (reusing placements still
//!    resident from earlier jobs);
//! 2. **Repartition** — every routed [`crate::plan::BlockMove`] physically
//!    executes through the codec-backed transport, landing serialized
//!    copies in consumer nodes' stores;
//! 3. **Local multiplication** — tasks resolve inputs **only** from their
//!    own node's store (a miss on a materialized block is a hard
//!    [`TaskError::MissingBlock`]) and install intermediate C copies
//!    locally;
//! 4. **Aggregation** — tasks fetch their planned intermediate copies
//!    through the transport and reduce them in parallel on the workers,
//!    not on the driver.
//!
//! The ledger is charged from the plan's routed model bytes — exactly what
//! the simulator reports for the same plan — so the simulated numbers stay
//! bit-identical to the measured ones (`tests/plan_parity.rs`), while the
//! transport separately counts the physically encoded payload bytes.

use crate::cuboid::Cuboid;
use crate::gpu_local;
use crate::methods::{MulMethod, ResolvedMethod};
use crate::plan::{BlockMove, JobPlan, Operand, TaskWork};
use crate::problem::MatmulProblem;
use distme_cluster::{
    BlockSource, BlockView, JobError, JobStats, LocalCluster, NodeStore, Phase, PhaseStats,
    PinGuard, StoreKey, TaskCtx, TaskError, TenantId, TransportStats, WireMove,
    RESIDENCY_WINDOW_JOBS,
};
use distme_matrix::{
    codec, fresh_matrix_uid, kernels, Block, BlockId, BlockMatrix, CsrBlock, DenseBlock,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Options for real execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealExecOptions {
    /// When set, local multiplication runs through Algorithm 1's subcuboid
    /// schedule with this per-task device-memory budget θg (the schedule's
    /// arithmetic runs on the CPU; see `distme-gpu`'s crate docs).
    pub gpu_task_mem_bytes: Option<u64>,
    /// Tenant the job's ledger traffic and scheduler leases are attributed
    /// to. Defaults to [`TenantId::ANONYMOUS`], preserving the single-user
    /// behaviour for direct callers.
    pub tenant: TenantId,
    /// Scheduler priority of this job's stages (clamped to the cluster's
    /// configured `priority_levels`; higher wins freed slots first).
    pub priority: u8,
    /// Execute through the dependency-driven streaming path
    /// ([`crate::pipelined`]): repartition, local multiplication and
    /// aggregation fuse into one gated stage so communication overlaps
    /// compute. Result bytes and ledger model bytes are bit-identical to
    /// the barrier path; off by default because the barrier path's
    /// per-stage fault-injection stage numbering is part of the chaos
    /// tests' fixed-seed contract.
    pub pipelined: bool,
}

/// Multiplies `a × b` distributed over `cluster` with `method`.
///
/// # Errors
/// * [`JobError::TaskFailed`] on shape mismatch;
/// * [`JobError::OutOfMemory`] when a task exceeds θt (or θg);
/// * scheduler errors per [`LocalCluster::run_stage`].
pub fn multiply(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
) -> Result<(BlockMatrix, JobStats), JobError> {
    multiply_with(cluster, a, b, method, RealExecOptions::default())
}

/// [`multiply`] with explicit options.
pub fn multiply_with(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = problem_of(a, b)?;
    let plan = JobPlan::build(&problem, method, cluster.config()).at_epoch(cluster.epoch());
    execute_plan(cluster, a, b, &plan, opts)
}

/// Distributed SDDMM: `C = mask ⊙ (A · B)` gathered into the mask's CSR
/// pattern, `A` row-sharded, `B` broadcast ([`MulMethod::Sddmm`]).
///
/// The mask is the *sampling pattern*, not an operand: it is sharded by
/// rows exactly like `A`'s stripes and never crosses the wire, so it adds
/// nothing to the routing view — sim/real byte parity over the plan is
/// unchanged. Stored mask entries (explicit zeros included) mark sampled
/// positions; mask values are ignored.
///
/// # Errors
/// See [`multiply`]; additionally fails when the mask is not
/// `a.rows × b.cols` at the operands' block size.
pub fn sddmm(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    mask: &BlockMatrix,
) -> Result<(BlockMatrix, JobStats), JobError> {
    sddmm_with(cluster, a, b, mask, RealExecOptions::default())
}

/// [`sddmm`] with explicit options (`pipelined` is ignored: the sampled
/// path always runs the barrier executor).
pub fn sddmm_with(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    mask: &BlockMatrix,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = MatmulProblem::sddmm(*a.meta(), *b.meta(), *mask.meta()).map_err(|e| {
        JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        }
    })?;
    let plan =
        JobPlan::build(&problem, MulMethod::Sddmm, cluster.config()).at_epoch(cluster.epoch());
    execute_plan_masked(cluster, a, b, Some(mask), &plan, opts)
}

/// [`multiply`] with a pre-resolved method (system profiles with legacy
/// execution semantics, parameter sweeps).
pub fn multiply_resolved(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    resolved: &ResolvedMethod,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = problem_of(a, b)?;
    let plan =
        JobPlan::from_resolved(&problem, resolved, cluster.config()).at_epoch(cluster.epoch());
    execute_plan(cluster, a, b, &plan, opts)
}

pub(crate) fn problem_of(a: &BlockMatrix, b: &BlockMatrix) -> Result<MatmulProblem, JobError> {
    MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    })
}

/// Everything both executors share before any stage runs: plan/epoch
/// validation, broadcast admission, operand ingest at the plan's home
/// nodes, and the driver-side model-byte charging from the plan's routing
/// view. Keeping this in one place is what makes the pipelined path's
/// ledger bytes structurally identical to the barrier path's.
pub(crate) struct JobSetup<'a> {
    /// Job-local mirror of the transport counters: the cluster-wide stats
    /// keep accumulating across jobs (session totals) while this job's
    /// numbers come from here. Snapshot-delta accounting would read
    /// concurrent jobs' traffic into this job's stats; a dedicated counter
    /// cannot.
    pub(crate) job_transport: TransportStats,
    /// Which A / B blocks exist at all (the "namenode index"): a view uses
    /// this to tell an implicit zero from a locality violation.
    pub(crate) a_index: BTreeSet<BlockId>,
    pub(crate) b_index: BTreeSet<BlockId>,
    /// The job's model bytes, accumulated locally from the same routing
    /// view the ledger was charged from — structurally identical sums, so
    /// per-job stats stay bit-exact under concurrent jobs without reading
    /// a shared snapshot that other jobs are mutating.
    pub(crate) model_shuffle: [u64; Phase::COUNT],
    pub(crate) model_cross: [u64; Phase::COUNT],
    pub(crate) model_broadcast: [u64; Phase::COUNT],
    /// Identity of this job's intermediate C copies in the stores.
    pub(crate) c_uid: u64,
    /// Parity blocks materialized for the operands at ingest (coded
    /// replication; 0 when [`ReplicationPolicy::Off`](distme_cluster::ReplicationPolicy)).
    pub(crate) parity_blocks_encoded: u64,
    /// Operands and the intermediate result stay resident for the whole
    /// job even when concurrent job completions advance the residency
    /// clock past the eviction window.
    _pins: [PinGuard<'a>; 3],
}

/// Validates `plan` against the cluster, ingests the operands at their
/// plan homes and charges the ledger from the routing view. Shared verbatim
/// by the barrier and pipelined executors.
pub(crate) fn prepare_job<'a>(
    cluster: &'a LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    plan: &JobPlan,
    opts: &RealExecOptions,
) -> Result<JobSetup<'a>, JobError> {
    let resolved = &plan.resolved;
    let nodes = cluster.config().nodes;
    if plan.nodes != nodes {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "plan routed for {} nodes cannot run on a {nodes}-node cluster",
                plan.nodes
            ),
        });
    }
    if plan.epoch != cluster.epoch() {
        return Err(JobError::TaskFailed {
            task: 0,
            message: format!(
                "plan built at membership epoch {} is stale: the cluster is now at epoch {}",
                plan.epoch,
                cluster.epoch()
            ),
        });
    }

    let stores = cluster.stores();
    stores.begin_job();
    let pin_a = stores.pin(a.uid());
    let pin_b = stores.pin(b.uid());

    // Broadcast variables are node-level: one shared copy per node must
    // fit. The admission check uses the *backend-local* encoded sizes (the
    // bytes this process would actually pin), not the plan's meta model.
    if resolved.broadcast_b {
        let b_encoded_total: u64 = b.blocks().map(|(_, blk)| codec::encoded_len(blk)).sum();
        if b_encoded_total > cluster.config().node_mem_bytes {
            return Err(JobError::OutOfMemory {
                task: 0,
                needed: b_encoded_total,
                budget: cluster.config().node_mem_bytes,
            });
        }
    }

    let a_index: BTreeSet<BlockId> = a.blocks().map(|(id, _)| id).collect();
    let b_index: BTreeSet<BlockId> = b.blocks().map(|(id, _)| id).collect();

    // Operands land on their plan-placement home nodes; a broadcast B
    // installs one shared `Arc` copy per node instead.
    for (id, blk) in a.blocks_shared() {
        stores.ingest(
            plan.home_of(Operand::A, id),
            StoreKey::operand(a.uid(), id),
            blk,
        );
    }
    for (id, blk) in b.blocks_shared() {
        if resolved.broadcast_b {
            for node in 0..nodes {
                stores.ingest(node, StoreKey::operand(b.uid(), id), Arc::clone(&blk));
            }
        } else {
            stores.ingest(
                plan.home_of(Operand::B, id),
                StoreKey::operand(b.uid(), id),
                blk,
            );
        }
    }
    stores.touch(a.uid());
    stores.touch(b.uid());
    // Coded replication: materialize parity for the operands now that
    // placement is final, so a node loss during this job can be decoded
    // from group survivors instead of forcing a re-ingest. Idempotent —
    // an operand already coded by an earlier job encodes to nothing.
    let parity_blocks_encoded = cluster.encode_parity(a.uid()) + cluster.encode_parity(b.uid());

    let mut model_shuffle = [0u64; Phase::COUNT];
    let mut model_cross = [0u64; Phase::COUNT];
    let mut model_broadcast = [0u64; Phase::COUNT];
    if let Some(bc) = plan.broadcast {
        // Table 2 accounting: every task fetches its own copy of B.
        model_broadcast[Phase::Repartition.index()] = bc.bytes_per_copy.saturating_mul(bc.copies);
        cluster.ledger().record_broadcast_for(
            opts.tenant,
            Phase::Repartition,
            bc.bytes_per_copy,
            bc.copies as usize,
        );
    }

    // Model bytes are charged once per *planned* move, from the plan's
    // routing view — never per physical delivery. Fault-injected drops and
    // lineage redeliveries therefore cannot skew the model: sim/real byte
    // parity is structural (`tests/plan_parity.rs`), and the physically
    // retransmitted bytes show up only in the transport's own counters.
    // The pipelined executor changes only *when* deliveries happen, never
    // this charging, so its ledger bytes stay bit-identical.
    for stage in &plan.stages {
        for task in &stage.tasks {
            for m in &task.inputs {
                let i = stage.input_phase.index();
                model_shuffle[i] += m.bytes;
                if m.from_node != m.to_node {
                    model_cross[i] += m.bytes;
                }
                cluster.ledger().record_shuffle_for(
                    opts.tenant,
                    stage.input_phase,
                    m.from_node,
                    m.to_node,
                    m.bytes,
                );
            }
        }
    }

    let c_uid = fresh_matrix_uid();
    let pin_c = stores.pin(c_uid);
    Ok(JobSetup {
        job_transport: TransportStats::default(),
        a_index,
        b_index,
        model_shuffle,
        model_cross,
        model_broadcast,
        c_uid,
        parity_blocks_encoded,
        _pins: [pin_a, pin_b, pin_c],
    })
}

/// Lowers a planned [`BlockMove`] to a physical [`WireMove`] keyed by the
/// replica identity of the operand it carries.
pub(crate) fn lower_move(
    a_uid: u64,
    b_uid: u64,
    c_uid: u64,
    phase: Phase,
    m: &BlockMove,
) -> WireMove {
    let uid = match m.operand {
        Operand::A => a_uid,
        Operand::B => b_uid,
        Operand::C => c_uid,
    };
    let key = StoreKey::replica(uid, m.id, m.copy);
    WireMove {
        phase,
        from_node: m.from_node,
        to_node: m.to_node,
        wire_bytes: m.bytes,
        src: key,
        dst: key,
    }
}

/// Executes `plan` against materialized operands.
///
/// # Errors
/// See [`multiply`].
pub fn execute_plan(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    plan: &JobPlan,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    execute_plan_masked(cluster, a, b, None, plan, opts)
}

/// [`execute_plan`] with an optional SDDMM sampling mask. With a mask, the
/// local-multiplication stage gathers each task's output into the mask's
/// row-stripe CSR pattern ([`multiply_cuboid_sddmm`]) instead of running
/// the dense accumulator, and the result skips density normalization so
/// the pattern survives verbatim. Everything else — ingest, routing,
/// ledger charging, aggregation, placement — is byte-for-byte the dense
/// path.
pub fn execute_plan_masked(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    mask: Option<&BlockMatrix>,
    plan: &JobPlan,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    if opts.pipelined && mask.is_none() {
        return crate::pipelined::execute_plan_pipelined(cluster, a, b, plan, opts);
    }
    let problem = &plan.problem;
    let resolved = &plan.resolved;
    let nodes = cluster.config().nodes;

    // ------------- Stage 1: ingest + physical repartition -----------------
    let rep_timer = Instant::now();
    let setup = prepare_job(cluster, a, b, plan, &opts)?;
    let JobSetup {
        ref job_transport,
        ref a_index,
        ref b_index,
        model_shuffle,
        model_cross,
        model_broadcast,
        c_uid,
        parity_blocks_encoded,
        ..
    } = setup;
    let stores = cluster.stores();
    let lower = |phase: Phase, m: &BlockMove| lower_move(a.uid(), b.uid(), c_uid, phase, m);

    // Physically execute the routing view of every pre-aggregation stage
    // (map-stage CRMM pre-moves + the mult stage's operand fetches): real
    // serialized bytes land in the consuming nodes' stores.
    let transport = cluster.transport().with_job_counters(job_transport);
    let fetch_lists: Vec<Vec<WireMove>> = plan
        .stages
        .iter()
        .filter(|s| s.phase != Phase::Aggregation)
        .flat_map(|s| {
            s.tasks
                .iter()
                .map(|t| t.inputs.iter().map(|m| lower(s.input_phase, m)).collect())
        })
        .filter(|l: &Vec<WireMove>| !l.is_empty())
        .collect();
    let fetch = cluster.run_stage_as(opts.tenant, opts.priority, fetch_lists, |ctx, moves| {
        for mv in moves {
            // A serialization buffer lives for the duration of the move.
            let payload = transport.execute(&mv, ctx.attempt)?;
            ctx.alloc(payload)?;
            ctx.free(payload);
        }
        Ok(())
    })?;
    // Retry backoff is charged to modeled time, never slept.
    let rep_secs = rep_timer.elapsed().as_secs_f64() + fetch.backoff_secs;

    // ------------- Stage 2: local multiplication -------------------------
    let mult_stage = plan.stage(Phase::LocalMult).expect("plans always multiply");
    let work: Vec<TaskWork> = mult_stage.tasks.iter().map(|t| t.work.clone()).collect();
    let broadcast_b = resolved.broadcast_b;
    let needs_agg = plan.stage(Phase::Aggregation).is_some();
    let mult = cluster.run_stage_as(opts.tenant, opts.priority, work, |ctx, item| {
        debug_assert_eq!(mult_stage.tasks[ctx.task].node, ctx.node);
        let store = stores.node(ctx.node);
        let a_view = BlockView::new(store, a.uid(), a_index);
        let b_view = BlockView::new(store, b.uid(), b_index);
        // Finalize an intermediate copy: R = 1 products are final and get
        // the dense/sparse normalization the aggregation stage would apply.
        let finish = |blk: Block| if needs_agg { blk } else { blk.normalize() };
        match item {
            TaskWork::Cuboid(cuboid) => {
                let mut in_bytes = 0u64;
                for id in cuboid.a_block_ids() {
                    if let Some(blk) = a_view.block(id.row, id.col)? {
                        in_bytes += codec::encoded_len(&blk);
                    }
                }
                if !broadcast_b {
                    for id in cuboid.b_block_ids() {
                        if let Some(blk) = b_view.block(id.row, id.col)? {
                            in_bytes += codec::encoded_len(&blk);
                        }
                    }
                }
                ctx.alloc(in_bytes)?;
                // A sampled task gathers into the mask's CSR pattern and
                // installs it verbatim — no density normalization, the
                // pattern (explicit zeros included) is the contract.
                let blocks: Vec<(BlockId, Block)> = match mask {
                    Some(mask) => multiply_cuboid_sddmm(&cuboid, &a_view, &b_view, mask)?
                        .into_iter()
                        .map(|(id, csr)| (id, Block::Sparse(csr)))
                        .collect(),
                    None => {
                        let dense = match opts.gpu_task_mem_bytes {
                            Some(theta_g) => {
                                gpu_local::execute_cuboid_real(
                                    &cuboid, &a_view, &b_view, problem, theta_g,
                                )?
                                .blocks
                            }
                            None => multiply_cuboid_cpu(&cuboid, &a_view, &b_view, problem)?,
                        };
                        dense
                            .into_iter()
                            .map(|(id, d)| (id, finish(Block::Dense(d))))
                            .collect()
                    }
                };
                let mut produced = Vec::with_capacity(blocks.len());
                for (id, blk) in blocks {
                    ctx.alloc(blk.mem_bytes())?;
                    store.install(StoreKey::replica(c_uid, id, ctx.task as u32), Arc::new(blk));
                    produced.push(id);
                }
                Ok(produced)
            }
            TaskWork::Voxels(voxels) => {
                let acc = multiply_voxels(ctx, &voxels, &a_view, &b_view)?;
                let mut produced = Vec::with_capacity(acc.len());
                for (id, blk) in acc {
                    store.install(
                        StoreKey::replica(c_uid, id, ctx.task as u32),
                        Arc::new(finish(blk)),
                    );
                    produced.push(id);
                }
                Ok(produced)
            }
            // Map and aggregation work never reaches the mult stage.
            TaskWork::MapRead | TaskWork::Aggregate(_) => Ok(Vec::new()),
        }
    })?;
    let mult_secs = mult.wall_secs + mult.backoff_secs;
    let mult_peak = mult.peak_task_mem_bytes;

    // Which (block, producer-copy) pairs physically exist — so aggregation
    // can tell "planned but zero" from "routed here but never delivered".
    let produced: BTreeSet<(BlockId, u32)> = mult
        .outputs
        .iter()
        .enumerate()
        .flat_map(|(t, ids)| ids.iter().map(move |&id| (id, t as u32)))
        .collect();

    // ------------- Stage 3: aggregation ----------------------------------
    let agg_timer = Instant::now();
    let mut c = BlockMatrix::new(problem.c);
    let mut agg_peak = 0u64;
    let mut agg_retries = 0u64;
    let mut agg_backoff = 0f64;
    if let Some(stage) = plan.stage(Phase::Aggregation) {
        // Each aggregation task fetches its planned intermediate copies
        // through the transport and reduces them — on the workers, per the
        // plan's routing, not in a driver-side regroup.
        // One reduce task's work: its routed fetches, then per output
        // block the unique producer copies to sum.
        type AggTask = (Vec<WireMove>, Vec<(BlockId, Vec<u32>)>);
        let items: Vec<AggTask> = stage
            .tasks
            .iter()
            .map(|t| {
                let moves: Vec<WireMove> = t
                    .inputs
                    .iter()
                    .map(|m| lower(stage.input_phase, m))
                    .collect();
                let mut copies: BTreeMap<BlockId, BTreeSet<u32>> = BTreeMap::new();
                for m in &t.inputs {
                    copies.entry(m.id).or_default().insert(m.copy);
                }
                let TaskWork::Aggregate(ids) = &t.work else {
                    return (moves, Vec::new());
                };
                let groups = ids
                    .iter()
                    .map(|id| {
                        (
                            *id,
                            copies
                                .get(id)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default(),
                        )
                    })
                    .collect();
                (moves, groups)
            })
            .collect();
        let agg =
            cluster.run_stage_as(opts.tenant, opts.priority, items, |ctx, (moves, groups)| {
                debug_assert_eq!(stage.tasks[ctx.task].node, ctx.node);
                for mv in moves {
                    let payload = transport.execute(&mv, ctx.attempt)?;
                    ctx.alloc(payload)?;
                    ctx.free(payload);
                }
                let store = stores.node(ctx.node);
                reduce_groups(ctx, store, ctx.node, c_uid, groups, &|id, copy| {
                    produced.contains(&(id, copy))
                })
            })?;
        agg_peak = agg.peak_task_mem_bytes;
        agg_retries = agg.retries;
        agg_backoff = agg.backoff_secs;
        for (id, blk) in agg.outputs.into_iter().flatten() {
            if blk.nnz() > 0 {
                put_block(&mut c, id, Arc::new(blk))?;
            }
        }
    } else {
        // R = 1: every intermediate copy is final; collect each task's
        // locally-installed outputs (a driver `collect()`, not a regroup —
        // each block has exactly one producer).
        for (t, ids) in mult.outputs.into_iter().enumerate() {
            let store = stores.node(mult_stage.tasks[t].node);
            for id in ids {
                let blk = store
                    .get(&StoreKey::replica(c_uid, id, t as u32))
                    .expect("a task's own installs are resident");
                if blk.nnz() > 0 {
                    put_block(&mut c, id, blk)?;
                }
            }
        }
    }
    let agg_secs = agg_timer.elapsed().as_secs_f64() + agg_backoff;

    // Intermediate copies die with the job; the *result* placement is
    // registered at the blocks' future home nodes so a chained operation
    // consuming `c` as an operand (GNMF's repeated factors) re-ingests
    // nothing. Stale placements age out after RESIDENCY_WINDOW_JOBS.
    stores.evict_matrix(c_uid);
    for (id, blk) in c.blocks_shared() {
        let key = StoreKey::operand(c.uid(), id);
        stores.ingest(
            crate::plan::operand_home(Operand::A, id, nodes),
            key,
            Arc::clone(&blk),
        );
        stores.ingest(crate::plan::operand_home(Operand::B, id, nodes), key, blk);
    }
    stores.touch(c.uid());
    stores.evict_stale(RESIDENCY_WINDOW_JOBS);
    // Result blocks whose two placement hashes collide are sole copies;
    // parity over the result keeps those recoverable too.
    let parity_blocks_encoded = parity_blocks_encoded + cluster.encode_parity(c.uid());

    // ------------- Statistics --------------------------------------------
    // Model bytes come from the job-local accumulators (charged to the
    // shared ledger above from the identical routing view); physical bytes
    // come from the job-local transport mirror. Neither reads shared state
    // a concurrent job could be mutating.
    let agg_tasks = plan.stage(Phase::Aggregation).map_or(0, |s| s.tasks.len());
    let rep = Phase::Repartition.index();
    let agg_i = Phase::Aggregation.index();
    let mut stats = JobStats {
        elapsed_secs: rep_secs + mult_secs + agg_secs,
        peak_task_mem_bytes: fetch.peak_task_mem_bytes.max(mult_peak).max(agg_peak),
        intermediate_bytes: model_shuffle[rep] + model_shuffle[agg_i],
        gpu_utilization: None,
        transport_payload_bytes: job_transport.payload_bytes(),
        retries: fetch.retries + mult.retries + agg_retries,
        redelivered_moves: job_transport.redelivered(),
        retransmitted_payload_bytes: job_transport.retransmitted_bytes(),
        parity_blocks_encoded,
        reconstructed_blocks: job_transport.reconstructed(),
        reconstruction_payload_bytes: job_transport.reconstruction_bytes(),
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: rep_secs,
        shuffle_bytes: model_shuffle[rep],
        cross_node_bytes: model_cross[rep],
        broadcast_bytes: model_broadcast[rep],
        tasks: plan.stage(Phase::Repartition).map_or(0, |s| s.tasks.len()),
    };
    *stats.phase_mut(Phase::LocalMult) = PhaseStats {
        secs: mult_secs,
        shuffle_bytes: 0,
        cross_node_bytes: 0,
        broadcast_bytes: 0,
        tasks: mult_stage.tasks.len(),
    };
    *stats.phase_mut(Phase::Aggregation) = PhaseStats {
        secs: agg_secs,
        shuffle_bytes: model_shuffle[agg_i],
        cross_node_bytes: model_cross[agg_i],
        broadcast_bytes: 0,
        tasks: agg_tasks,
    };
    Ok((c, stats))
}

pub(crate) fn put_block(c: &mut BlockMatrix, id: BlockId, blk: Arc<Block>) -> Result<(), JobError> {
    c.put_shared(id.row, id.col, blk)
        .map_err(|e| JobError::TaskFailed {
            task: 0,
            message: e.to_string(),
        })
}

/// RMM voxel work: one isolated block product per voxel, no sharing.
/// Same-(i, j) voxels of one bucket pre-accumulate into a single
/// intermediate copy (the task produces one block per destination, like a
/// combiner before the shuffle).
pub(crate) fn multiply_voxels<A: BlockSource, B: BlockSource>(
    ctx: &TaskCtx,
    voxels: &[(u32, u32, u32)],
    a: &A,
    b: &B,
) -> Result<BTreeMap<BlockId, Block>, TaskError> {
    let mut acc: BTreeMap<BlockId, Block> = BTreeMap::new();
    for &(i, j, k) in voxels {
        let (Some(ab), Some(bb)) = (a.block(i, k)?, b.block(k, j)?) else {
            continue;
        };
        ctx.alloc(codec::encoded_len(&ab) + codec::encoded_len(&bb))?;
        let prod = kernels::multiply(&ab, &bb)?;
        ctx.alloc(prod.mem_bytes())?;
        let id = BlockId::new(i, j);
        let merged = match acc.remove(&id) {
            None => prod,
            Some(prev) => prev.add(&prod)?,
        };
        acc.insert(id, merged);
    }
    Ok(acc)
}

/// One aggregation task's reduce: sums the planned intermediate copies of
/// each output block resident on `node`. `produced` answers whether a
/// (block, producer-copy) pair physically exists somewhere — a produced
/// copy that never reached this node is a routing bug; an unproduced one
/// is an implicit zero.
pub(crate) fn reduce_groups(
    ctx: &TaskCtx,
    store: &NodeStore,
    node: usize,
    c_uid: u64,
    groups: Vec<(BlockId, Vec<u32>)>,
    produced: &dyn Fn(BlockId, u32) -> bool,
) -> Result<Vec<(BlockId, Block)>, TaskError> {
    let mut out: Vec<(BlockId, Block)> = Vec::new();
    for (id, copies) in groups {
        let mut acc: Option<Block> = None;
        for copy in copies {
            match store.get(&StoreKey::replica(c_uid, id, copy)) {
                Some(part) => {
                    ctx.alloc(part.mem_bytes())?;
                    acc = Some(match acc {
                        None => (*part).clone(),
                        Some(prev) => prev.add(&part)?,
                    });
                }
                None if produced(id, copy) => {
                    return Err(TaskError::MissingBlock { node, id });
                }
                None => {}
            }
        }
        if let Some(block) = acc {
            out.push((id, block.normalize()));
        }
    }
    Ok(out)
}

/// Sampled cuboid multiplication: each output block of the cuboid's
/// `ij`-face gathers `A·B` into the co-located mask block's CSR pattern.
/// Mask blocks are read straight off the stationary mask matrix — they
/// ride with the cuboid's row stripe by construction and never shuffle.
/// Dot products accumulate over `k` ascending, so block results are
/// bit-deterministic for a fixed cuboid grid.
pub(crate) fn multiply_cuboid_sddmm<A: BlockSource, B: BlockSource>(
    cuboid: &Cuboid,
    a: &A,
    b: &B,
    mask: &BlockMatrix,
) -> Result<Vec<(BlockId, CsrBlock)>, TaskError> {
    let mut out = Vec::new();
    for i in cuboid.i0..cuboid.i1 {
        for j in cuboid.j0..cuboid.j1 {
            let Some(mblk) = mask.get(i, j) else {
                continue; // no sampled positions in this block
            };
            let pattern = mblk.to_sparse();
            if pattern.nnz() == 0 {
                continue;
            }
            let mut values = vec![0.0; pattern.nnz()];
            for k in cuboid.k0..cuboid.k1 {
                let (Some(ab), Some(bb)) = (a.block(i, k)?, b.block(k, j)?) else {
                    continue;
                };
                kernels::sddmm::sddmm_acc(&ab.to_dense(), &bb.to_dense(), &pattern, &mut values)?;
            }
            let csr = CsrBlock::from_raw_parts(
                pattern.rows(),
                pattern.cols(),
                pattern.row_ptr().to_vec(),
                pattern.col_idx().to_vec(),
                values,
            )?;
            out.push((BlockId::new(i, j), csr));
        }
    }
    Ok(out)
}

pub(crate) fn multiply_cuboid_cpu<A: BlockSource, B: BlockSource>(
    cuboid: &Cuboid,
    a: &A,
    b: &B,
    problem: &MatmulProblem,
) -> Result<Vec<(BlockId, DenseBlock)>, TaskError> {
    let mut out = Vec::new();
    for i in cuboid.i0..cuboid.i1 {
        for j in cuboid.j0..cuboid.j1 {
            let (rows, cols) = problem.c.block_dims(i, j);
            let mut acc = DenseBlock::zeros(rows as usize, cols as usize);
            let mut any = false;
            for k in cuboid.k0..cuboid.k1 {
                let (Some(ab), Some(bb)) = (a.block(i, k)?, b.block(k, j)?) else {
                    continue;
                };
                kernels::multiply_accumulate(&mut acc, &ab, &bb)?;
                any = true;
            }
            if any {
                out.push((BlockId::new(i, j), acc));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CuboidSpec;
    use distme_cluster::ClusterConfig;
    use distme_matrix::{MatrixGenerator, MatrixMeta};

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterConfig::laptop())
    }

    fn operands(bs: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix, BlockMatrix) {
        let am = MatrixMeta::sparse(5 * bs, 4 * bs, sparsity).with_block_size(bs);
        let bm = MatrixMeta::sparse(4 * bs, 3 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(11).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(22).generate(&bm).unwrap();
        let reference = a.multiply(&b).unwrap();
        (a, b, reference)
    }

    #[test]
    fn every_method_computes_the_reference_product() {
        let (a, b, reference) = operands(16, 1.0);
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
            MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)),
            MulMethod::Crmm,
        ] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method)
                .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
            let diff = prod.max_abs_diff(&reference).unwrap();
            assert!(diff < 1e-9, "{}: diff {diff}", method.name());
        }
    }

    #[test]
    fn sparse_operands_work_across_methods() {
        let (a, b, reference) = operands(16, 0.08);
        for method in [MulMethod::Cpmm, MulMethod::Rmm, MulMethod::CuboidAuto] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method).unwrap();
            assert!(
                prod.max_abs_diff(&reference).unwrap() < 1e-9,
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn gpu_schedule_matches_cpu_path() {
        let (a, b, reference) = operands(16, 1.0);
        let c = cluster();
        let opts = RealExecOptions {
            // Small θg: forces several subcuboid iterations per cuboid.
            gpu_task_mem_bytes: Some(40_000),
            ..Default::default()
        };
        let (prod, _) = multiply_with(&c, &a, &b, MulMethod::CuboidAuto, opts).unwrap();
        assert!(prod.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn measured_communication_ordering_matches_table2() {
        // RMM must shuffle strictly more than CuboidMM; BMM must broadcast.
        let (a, b, _) = operands(16, 1.0);
        let mut comm = std::collections::HashMap::new();
        for method in [MulMethod::Rmm, MulMethod::CuboidAuto, MulMethod::Bmm] {
            let c = cluster();
            let (_, stats) = multiply(&c, &a, &b, method).unwrap();
            comm.insert(method.name().to_string(), stats);
        }
        assert!(
            comm["RMM"].total_shuffle_bytes() > comm["CuboidMM"].total_shuffle_bytes(),
            "RMM {} vs CuboidMM {}",
            comm["RMM"].total_shuffle_bytes(),
            comm["CuboidMM"].total_shuffle_bytes()
        );
        assert!(comm["BMM"].total_broadcast_bytes() > 0);
        assert_eq!(comm["CuboidMM"].total_broadcast_bytes(), 0);
    }

    #[test]
    fn task_memory_budget_produces_oom() {
        let (a, b, _) = operands(16, 1.0);
        let mut cfg = ClusterConfig::laptop();
        cfg.task_mem_bytes = 10_000; // smaller than one BMM task's |B|
        let c = LocalCluster::new(cfg);
        let err = multiply(&c, &a, &b, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let am = MatrixMeta::dense(32, 32).with_block_size(16);
        let bm = MatrixMeta::dense(48, 32).with_block_size(16);
        let a = MatrixGenerator::with_seed(1).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&bm).unwrap();
        assert!(matches!(
            multiply(&cluster(), &a, &b, MulMethod::CuboidAuto),
            Err(JobError::TaskFailed { .. })
        ));
    }

    #[test]
    fn aggregation_bytes_zero_when_r_is_one() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cuboid(CuboidSpec::new(2, 2, 1))).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
        // And CPMM (R = K) must aggregate.
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert!(stats.phase(Phase::Aggregation).shuffle_bytes > 0);
    }

    #[test]
    fn stats_report_intermediate_bytes() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert_eq!(
            stats.intermediate_bytes,
            stats.phase(Phase::Repartition).shuffle_bytes
                + stats.phase(Phase::Aggregation).shuffle_bytes
        );
    }

    #[test]
    fn transport_counts_real_payload_bytes() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        // Repartition + aggregation moved physical blocks through the
        // codec; the payload counter reflects the encoded bytes.
        assert!(stats.transport_payload_bytes > 0);
        assert_eq!(
            stats.transport_payload_bytes,
            c.transport_stats().payload_bytes()
        );
    }

    #[test]
    fn ledger_accumulates_across_jobs() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, first) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        let after_one = c.ledger().shuffle_bytes(Phase::Repartition);
        let (_, second) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        // Per-job stats are deltas; the ledger keeps the running total.
        assert_eq!(
            first.phase(Phase::Repartition).shuffle_bytes,
            second.phase(Phase::Repartition).shuffle_bytes
        );
        assert_eq!(c.ledger().shuffle_bytes(Phase::Repartition), 2 * after_one);
    }

    #[test]
    fn identical_job_reuses_resident_operands() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        let reused_before = c.stores().ingest_reused();
        multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert!(
            c.stores().ingest_reused() > reused_before,
            "second identical job should find operand placements resident"
        );
    }

    #[test]
    fn unrouted_block_read_fails_with_missing_block() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let problem = MatmulProblem::new(*a.meta(), *b.meta()).unwrap();
        let mut plan = JobPlan::build(&problem, MulMethod::Cpmm, c.config());
        // Pick one cross-node A delivery and drop every move that would
        // land that block on that node: the consuming task must fail
        // loudly, not silently fall through to shared memory.
        let (victim_id, victim_node) = plan
            .stage(Phase::LocalMult)
            .unwrap()
            .tasks
            .iter()
            .flat_map(|t| t.inputs.iter())
            .find(|m| m.operand == Operand::A && m.from_node != m.to_node)
            .map(|m| (m.id, m.to_node))
            .expect("CPMM has cross-node A moves");
        for stage in &mut plan.stages {
            for task in &mut stage.tasks {
                task.inputs.retain(|m| {
                    !(m.operand == Operand::A && m.id == victim_id && m.to_node == victim_node)
                });
            }
        }
        let err = execute_plan(&c, &a, &b, &plan, RealExecOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("not resident"),
            "expected a MissingBlock failure, got: {err}"
        );
    }

    #[test]
    fn a_plan_from_a_dead_grid_is_rejected_even_at_matching_node_count() {
        let (a, b, _) = operands(16, 1.0);
        let mut c = cluster();
        let problem = MatmulProblem::new(*a.meta(), *b.meta()).unwrap();
        let plan = JobPlan::build(&problem, MulMethod::Cpmm, c.config()); // epoch 0
        c.scale_to(6).unwrap();
        c.scale_to(4).unwrap();
        // Node count matches again, but the grid the plan routed for is
        // two membership changes gone.
        let err = execute_plan(&c, &a, &b, &plan, RealExecOptions::default()).unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");
    }

    #[test]
    fn spmm_shift_computes_the_reference_product() {
        let am = MatrixMeta::sparse(5 * 16, 4 * 16, 0.06).with_block_size(16);
        let bm = MatrixMeta::dense(4 * 16, 2 * 16).with_block_size(16);
        let a = MatrixGenerator::with_seed(31).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(32).generate(&bm).unwrap();
        let reference = a.multiply(&b).unwrap();
        let c = cluster();
        let (prod, stats) = multiply(&c, &a, &b, MulMethod::SpmmShift).unwrap();
        assert!(prod.max_abs_diff(&reference).unwrap() < 1e-9);
        // Row stripes stay put; the dense factor repartitions (no torrent).
        assert_eq!(stats.total_broadcast_bytes(), 0);
        assert!(stats.total_shuffle_bytes() > 0);
    }

    #[test]
    fn sddmm_gathers_the_masked_product_into_the_mask_pattern() {
        let am = MatrixMeta::dense(5 * 16, 3 * 16).with_block_size(16);
        let bm = MatrixMeta::dense(3 * 16, 4 * 16).with_block_size(16);
        let mm = MatrixMeta::sparse(5 * 16, 4 * 16, 0.12).with_block_size(16);
        let a = MatrixGenerator::with_seed(41).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(42).generate(&bm).unwrap();
        let mask = MatrixGenerator::with_seed(43).generate(&mm).unwrap();
        let full = a.multiply(&b).unwrap();
        let c = cluster();
        let (prod, stats) = sddmm(&c, &a, &b, &mask).unwrap();
        // Every sampled position carries the dense product's value...
        let mut sampled = 0usize;
        for (id, blk) in prod.blocks() {
            let Block::Sparse(s) = blk else {
                panic!("SDDMM output blocks stay in the mask's CSR pattern");
            };
            for (i, j, v) in s.iter() {
                let gi = id.row as u64 * 16 + i as u64;
                let gj = id.col as u64 * 16 + j as u64;
                let expect = full.get_element(gi, gj);
                assert!((v - expect).abs() < 1e-9, "({gi}, {gj})");
                sampled += 1;
            }
        }
        // ...and only the sampled positions exist.
        assert_eq!(sampled as u64, mask.nnz());
        // The mask is stationary: communication is B's broadcast only.
        assert!(stats.total_broadcast_bytes() > 0);
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
    }

    #[test]
    fn sddmm_rejects_a_mismatched_mask() {
        let am = MatrixMeta::dense(32, 32).with_block_size(16);
        let a = MatrixGenerator::with_seed(1).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&am).unwrap();
        let mm = MatrixMeta::sparse(48, 32, 0.1).with_block_size(16);
        let mask = MatrixGenerator::with_seed(3).generate(&mm).unwrap();
        assert!(matches!(
            sddmm(&cluster(), &a, &b, &mask),
            Err(JobError::TaskFailed { .. })
        ));
    }

    #[test]
    fn resolution_happens_once_for_a_real_multiply() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let before = crate::optimizer::instrument::optimize_calls();
        let _ = multiply(&c, &a, &b, MulMethod::CuboidAuto).unwrap();
        assert_eq!(crate::optimizer::instrument::optimize_calls() - before, 1);
    }
}
