//! The three-step pipeline executed with real blocks (laptop scale).
//!
//! Same plan structure as [`crate::sim_exec`], but every block is
//! materialized, every shuffle byte is counted from real serialized sizes,
//! every task runs on a worker thread under its θt budget, and the output
//! is compared against the single-node reference by the test suite. This
//! is what makes the simulated numbers trustworthy: the communication
//! volumes the simulator charges are exactly the volumes this executor
//! measures on the same plans.

use crate::cuboid::{Cuboid, CuboidGrid};
use crate::gpu_local;
use crate::methods::{MulMethod, ResolvedMethod};
use crate::optimizer::OptimizerConfig;
use crate::problem::MatmulProblem;
use distme_cluster::{JobError, JobStats, LocalCluster, Phase, PhaseStats, TaskError};
use distme_matrix::{codec, kernels, Block, BlockId, BlockMatrix, DenseBlock};
use std::collections::BTreeMap;
use std::time::Instant;

/// Options for real execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealExecOptions {
    /// When set, local multiplication runs through Algorithm 1's subcuboid
    /// schedule with this per-task device-memory budget θg (the schedule's
    /// arithmetic runs on the CPU; see `distme-gpu`'s crate docs).
    pub gpu_task_mem_bytes: Option<u64>,
}

/// Multiplies `a × b` distributed over `cluster` with `method`.
///
/// # Errors
/// * [`JobError::TaskFailed`] on shape mismatch;
/// * [`JobError::OutOfMemory`] when a task exceeds θt (or θg);
/// * scheduler errors per [`LocalCluster::run_stage`].
pub fn multiply(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
) -> Result<(BlockMatrix, JobStats), JobError> {
    multiply_with(cluster, a, b, method, RealExecOptions::default())
}

/// [`multiply`] with explicit options.
pub fn multiply_with(
    cluster: &LocalCluster,
    a: &BlockMatrix,
    b: &BlockMatrix,
    method: MulMethod,
    opts: RealExecOptions,
) -> Result<(BlockMatrix, JobStats), JobError> {
    let problem = MatmulProblem::new(*a.meta(), *b.meta()).map_err(|e| JobError::TaskFailed {
        task: 0,
        message: e.to_string(),
    })?;
    let resolved = ResolvedMethod::resolve(
        method,
        &problem,
        &OptimizerConfig::from_cluster(cluster.config()),
    );
    cluster.ledger().reset();

    let b_encoded_total: u64 = b.blocks().map(|(_, blk)| codec::encoded_len(blk)).sum();

    // ------------- Stage 1: repartition accounting -----------------------
    // Input blocks start on their HDFS "home" node; shipping them to their
    // local-mult tasks is the repartition shuffle. (Blocks physically stay
    // in shared memory — the executor counts the bytes the movement would
    // serialize.)
    let rep_timer = Instant::now();
    let work_items: Vec<WorkItem> = build_work_items(&problem, &resolved);
    for (t, item) in work_items.iter().enumerate() {
        let to_node = cluster.node_of_task(t);
        for id in item.a_reads(&resolved) {
            if let Some(blk) = a.get(id.row, id.col) {
                cluster.ledger().record_shuffle(
                    Phase::Repartition,
                    home_node(id, 0, cluster.config().nodes),
                    to_node,
                    codec::encoded_len(blk),
                );
            }
        }
        if !resolved.broadcast_b {
            for id in item.b_reads(&resolved) {
                if let Some(blk) = b.get(id.row, id.col) {
                    cluster.ledger().record_shuffle(
                        Phase::Repartition,
                        home_node(id, 1, cluster.config().nodes),
                        to_node,
                        codec::encoded_len(blk),
                    );
                }
            }
        }
    }
    if resolved.broadcast_b {
        // Table 2 accounting: every task fetches its own copy of B.
        for _ in 0..work_items.len().div_ceil(cluster.config().nodes.max(1)) {
            cluster.broadcast(Phase::Repartition, b_encoded_total);
        }
    }
    if resolved.pre_shuffle_bytes > 0 {
        // CRMM's logical-block formation: one extra pass over both inputs.
        for (id, blk) in a.blocks() {
            let home = home_node(id, 0, cluster.config().nodes);
            let dest = home_node(id, 2, cluster.config().nodes);
            cluster
                .ledger()
                .record_shuffle(Phase::Repartition, home, dest, codec::encoded_len(blk));
        }
        for (id, blk) in b.blocks() {
            let home = home_node(id, 1, cluster.config().nodes);
            let dest = home_node(id, 3, cluster.config().nodes);
            cluster
                .ledger()
                .record_shuffle(Phase::Repartition, home, dest, codec::encoded_len(blk));
        }
    }
    let rep_secs = rep_timer.elapsed().as_secs_f64();

    // ------------- Stage 2: local multiplication -------------------------
    let needs_aggregation = resolved.spec.r > 1 || (resolved.voxel_hash && problem.dims().2 > 1);
    let c_meta = problem.c;
    // Broadcast variables are node-level: one shared copy per node.
    if resolved.broadcast_b && b_encoded_total > cluster.config().node_mem_bytes {
        return Err(JobError::OutOfMemory {
            task: 0,
            needed: b_encoded_total,
            budget: cluster.config().node_mem_bytes,
        });
    }
    let mult = cluster.run_stage(work_items, |ctx, item| {
        match item {
            WorkItem::Cuboid(cuboid) => {
                let mut in_bytes = 0u64;
                for id in cuboid.a_block_ids() {
                    if let Some(blk) = a.get(id.row, id.col) {
                        in_bytes += codec::encoded_len(blk);
                    }
                }
                if !resolved.broadcast_b {
                    for id in cuboid.b_block_ids() {
                        if let Some(blk) = b.get(id.row, id.col) {
                            in_bytes += codec::encoded_len(blk);
                        }
                    }
                }
                ctx.alloc(in_bytes)?;
                let blocks = match opts.gpu_task_mem_bytes {
                    Some(theta_g) => {
                        let res = gpu_local::execute_cuboid_real(&cuboid, a, b, &c_meta, theta_g)?;
                        res.blocks
                    }
                    None => multiply_cuboid_cpu(&cuboid, a, b, &problem)?,
                };
                let mut out = Vec::with_capacity(blocks.len());
                for (id, dense) in blocks {
                    ctx.alloc(dense.mem_bytes())?;
                    out.push((id, Block::Dense(dense)));
                }
                Ok(out)
            }
            WorkItem::Voxels(voxels) => {
                // RMM: one isolated block product per voxel, no sharing.
                let mut out = Vec::with_capacity(voxels.len());
                for (i, j, k) in voxels {
                    let (Some(ab), Some(bb)) = (a.get(i, k), b.get(k, j)) else {
                        continue;
                    };
                    ctx.alloc(codec::encoded_len(ab) + codec::encoded_len(bb))?;
                    let prod = kernels::multiply(ab, bb)?;
                    ctx.alloc(prod.mem_bytes())?;
                    out.push((BlockId::new(i, j), prod));
                }
                Ok(out)
            }
        }
    })?;
    let mult_secs = mult.wall_secs;
    let mult_peak = mult.peak_task_mem_bytes;

    // ------------- Stage 3: aggregation ----------------------------------
    let agg_timer = Instant::now();
    let mut groups: BTreeMap<BlockId, Vec<(usize, Block)>> = BTreeMap::new();
    for (producer, outputs) in mult.outputs.into_iter().enumerate() {
        for (id, blk) in outputs {
            groups.entry(id).or_default().push((producer, blk));
        }
    }
    let group_list: Vec<(BlockId, Vec<(usize, Block)>)> = groups.into_iter().collect();
    if needs_aggregation {
        for (t, (_, parts)) in group_list.iter().enumerate() {
            let to_node = cluster.node_of_task(t);
            for (producer, blk) in parts {
                cluster.ledger().record_shuffle(
                    Phase::Aggregation,
                    cluster.node_of_task(*producer),
                    to_node,
                    codec::encoded_len(blk),
                );
            }
        }
    }
    let agg = cluster.run_stage(group_list, |ctx, (id, parts)| {
        let mut acc: Option<Block> = None;
        for (_, blk) in parts {
            ctx.alloc(blk.mem_bytes())?;
            acc = Some(match acc {
                None => blk,
                Some(prev) => prev.add(&blk)?,
            });
        }
        let block = acc.expect("groups are non-empty by construction");
        Ok((id, block.normalize()))
    })?;
    let agg_secs = agg_timer.elapsed().as_secs_f64();

    let mut c = BlockMatrix::new(problem.c);
    for (id, blk) in agg.outputs {
        if blk.nnz() > 0 {
            c.put(id.row, id.col, blk).map_err(|e| JobError::TaskFailed {
                task: 0,
                message: e.to_string(),
            })?;
        }
    }

    // ------------- Statistics --------------------------------------------
    let ledger = cluster.ledger();
    let mut stats = JobStats {
        elapsed_secs: rep_secs + mult_secs + agg_secs,
        peak_task_mem_bytes: mult_peak.max(agg.peak_task_mem_bytes),
        intermediate_bytes: ledger.shuffle_bytes(Phase::Repartition)
            + ledger.shuffle_bytes(Phase::Aggregation),
        gpu_utilization: None,
        ..Default::default()
    };
    *stats.phase_mut(Phase::Repartition) = PhaseStats {
        secs: rep_secs,
        shuffle_bytes: ledger.shuffle_bytes(Phase::Repartition),
        cross_node_bytes: ledger.cross_node_bytes(Phase::Repartition),
        broadcast_bytes: ledger.broadcast_bytes(Phase::Repartition),
        tasks: resolved.effective_tasks(&problem) as usize,
    };
    *stats.phase_mut(Phase::LocalMult) = PhaseStats {
        secs: mult_secs,
        shuffle_bytes: 0,
        cross_node_bytes: 0,
        broadcast_bytes: 0,
        tasks: resolved.effective_tasks(&problem) as usize,
    };
    *stats.phase_mut(Phase::Aggregation) = PhaseStats {
        secs: agg_secs,
        shuffle_bytes: ledger.shuffle_bytes(Phase::Aggregation),
        cross_node_bytes: ledger.cross_node_bytes(Phase::Aggregation),
        broadcast_bytes: 0,
        tasks: if needs_aggregation {
            problem.c.num_blocks() as usize
        } else {
            0
        },
    };
    Ok((c, stats))
}

/// A local-multiplication work item: a cuboid, or (for RMM) a hashed set of
/// voxels.
enum WorkItem {
    Cuboid(Cuboid),
    Voxels(Vec<(u32, u32, u32)>),
}

impl WorkItem {
    fn a_reads(&self, _resolved: &ResolvedMethod) -> Vec<BlockId> {
        match self {
            WorkItem::Cuboid(c) => c.a_block_ids().collect(),
            WorkItem::Voxels(vs) => vs.iter().map(|&(i, _, k)| BlockId::new(i, k)).collect(),
        }
    }

    fn b_reads(&self, _resolved: &ResolvedMethod) -> Vec<BlockId> {
        match self {
            WorkItem::Cuboid(c) => c.b_block_ids().collect(),
            WorkItem::Voxels(vs) => vs.iter().map(|&(_, j, k)| BlockId::new(k, j)).collect(),
        }
    }
}

fn build_work_items(problem: &MatmulProblem, resolved: &ResolvedMethod) -> Vec<WorkItem> {
    if resolved.voxel_hash {
        let t = resolved.tasks.min(problem.voxels()).max(1) as usize;
        let (i, j, k) = problem.dims();
        let mut buckets: Vec<Vec<(u32, u32, u32)>> = (0..t).map(|_| Vec::new()).collect();
        for vi in 0..i {
            for vj in 0..j {
                for vk in 0..k {
                    let h = voxel_hash(vi, vj, vk) as usize % t;
                    buckets[h].push((vi, vj, vk));
                }
            }
        }
        buckets.into_iter().map(WorkItem::Voxels).collect()
    } else {
        CuboidGrid::new(problem, resolved.spec)
            .cuboids()
            .map(WorkItem::Cuboid)
            .collect()
    }
}

fn multiply_cuboid_cpu(
    cuboid: &Cuboid,
    a: &BlockMatrix,
    b: &BlockMatrix,
    problem: &MatmulProblem,
) -> Result<Vec<(BlockId, DenseBlock)>, TaskError> {
    let mut out = Vec::new();
    for i in cuboid.i0..cuboid.i1 {
        for j in cuboid.j0..cuboid.j1 {
            let (rows, cols) = problem.c.block_dims(i, j);
            let mut acc = DenseBlock::zeros(rows as usize, cols as usize);
            let mut any = false;
            for k in cuboid.k0..cuboid.k1 {
                let (Some(ab), Some(bb)) = (a.get(i, k), b.get(k, j)) else {
                    continue;
                };
                kernels::multiply_accumulate(&mut acc, ab, bb)?;
                any = true;
            }
            if any {
                out.push((BlockId::new(i, j), acc));
            }
        }
    }
    Ok(out)
}

/// HDFS "home" node of an input block (`which` salts A/B/destination
/// spaces apart).
fn home_node(id: BlockId, which: u64, nodes: usize) -> usize {
    let mut z = (((id.row as u64) << 32) | id.col as u64)
        .wrapping_add(which.wrapping_mul(0xA24BAED4963EE407))
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) as usize % nodes
}

fn voxel_hash(i: u32, j: u32, k: u32) -> u64 {
    let mut z = ((i as u64) << 42 | (j as u64) << 21 | k as u64)
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CuboidSpec;
    use distme_cluster::ClusterConfig;
    use distme_matrix::{MatrixGenerator, MatrixMeta};

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterConfig::laptop())
    }

    fn operands(bs: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix, BlockMatrix) {
        let am = MatrixMeta::sparse(5 * bs, 4 * bs, sparsity).with_block_size(bs);
        let bm = MatrixMeta::sparse(4 * bs, 3 * bs, sparsity).with_block_size(bs);
        let a = MatrixGenerator::with_seed(11).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(22).generate(&bm).unwrap();
        let reference = a.multiply(&b).unwrap();
        (a, b, reference)
    }

    #[test]
    fn every_method_computes_the_reference_product() {
        let (a, b, reference) = operands(16, 1.0);
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::CuboidAuto,
            MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)),
            MulMethod::Crmm,
        ] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method)
                .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
            let diff = prod.max_abs_diff(&reference).unwrap();
            assert!(diff < 1e-9, "{}: diff {diff}", method.name());
        }
    }

    #[test]
    fn sparse_operands_work_across_methods() {
        let (a, b, reference) = operands(16, 0.08);
        for method in [MulMethod::Cpmm, MulMethod::Rmm, MulMethod::CuboidAuto] {
            let c = cluster();
            let (prod, _) = multiply(&c, &a, &b, method).unwrap();
            assert!(prod.max_abs_diff(&reference).unwrap() < 1e-9, "{}", method.name());
        }
    }

    #[test]
    fn gpu_schedule_matches_cpu_path() {
        let (a, b, reference) = operands(16, 1.0);
        let c = cluster();
        let opts = RealExecOptions {
            // Small θg: forces several subcuboid iterations per cuboid.
            gpu_task_mem_bytes: Some(40_000),
        };
        let (prod, _) =
            multiply_with(&c, &a, &b, MulMethod::CuboidAuto, opts).unwrap();
        assert!(prod.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn measured_communication_ordering_matches_table2() {
        // RMM must shuffle strictly more than CuboidMM; BMM must broadcast.
        let (a, b, _) = operands(16, 1.0);
        let mut comm = std::collections::HashMap::new();
        for method in [MulMethod::Rmm, MulMethod::CuboidAuto, MulMethod::Bmm] {
            let c = cluster();
            let (_, stats) = multiply(&c, &a, &b, method).unwrap();
            comm.insert(method.name().to_string(), stats);
        }
        assert!(
            comm["RMM"].total_shuffle_bytes() > comm["CuboidMM"].total_shuffle_bytes(),
            "RMM {} vs CuboidMM {}",
            comm["RMM"].total_shuffle_bytes(),
            comm["CuboidMM"].total_shuffle_bytes()
        );
        assert!(comm["BMM"].total_broadcast_bytes() > 0);
        assert_eq!(comm["CuboidMM"].total_broadcast_bytes(), 0);
    }

    #[test]
    fn task_memory_budget_produces_oom() {
        let (a, b, _) = operands(16, 1.0);
        let mut cfg = ClusterConfig::laptop();
        cfg.task_mem_bytes = 10_000; // smaller than one BMM task's |B|
        let c = LocalCluster::new(cfg);
        let err = multiply(&c, &a, &b, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let am = MatrixMeta::dense(32, 32).with_block_size(16);
        let bm = MatrixMeta::dense(48, 32).with_block_size(16);
        let a = MatrixGenerator::with_seed(1).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&bm).unwrap();
        assert!(matches!(
            multiply(&cluster(), &a, &b, MulMethod::CuboidAuto),
            Err(JobError::TaskFailed { .. })
        ));
    }

    #[test]
    fn aggregation_bytes_zero_when_r_is_one() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) =
            multiply(&c, &a, &b, MulMethod::Cuboid(CuboidSpec::new(2, 2, 1))).unwrap();
        assert_eq!(stats.phase(Phase::Aggregation).shuffle_bytes, 0);
        // And CPMM (R = K) must aggregate.
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert!(stats.phase(Phase::Aggregation).shuffle_bytes > 0);
    }

    #[test]
    fn stats_report_intermediate_bytes() {
        let (a, b, _) = operands(16, 1.0);
        let c = cluster();
        let (_, stats) = multiply(&c, &a, &b, MulMethod::Cpmm).unwrap();
        assert_eq!(
            stats.intermediate_bytes,
            stats.phase(Phase::Repartition).shuffle_bytes
                + stats.phase(Phase::Aggregation).shuffle_bytes
        );
    }
}
