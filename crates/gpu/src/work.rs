//! Coarse GPU work summaries.
//!
//! The cluster simulator describes each GPU task's total device work with a
//! [`GpuWork`]; `distme-core::gpu_local` *derives* those summaries from
//! Algorithm 1's fine-grained schedule (or the naive schedule, for the
//! ablation) and executes them against the shared [`GpuDevice`].

use crate::device::GpuDevice;
use crate::stream::StreamSet;
use distme_sim::SimTime;

/// Aggregate device work of one task's local-multiplication step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuWork {
    /// Bytes copied host→device over all iterations.
    pub h2d_bytes: u64,
    /// Bytes copied device→host (the final `C'`, §4.3).
    pub d2h_bytes: u64,
    /// Dense kernel FLOPs.
    pub dense_flops: f64,
    /// Sparse kernel FLOPs (csrmm).
    pub sparse_flops: f64,
    /// Number of kernel launches (for launch-overhead accounting).
    pub kernel_calls: u64,
    /// Number of streams the schedule uses (`J'` in Algorithm 1).
    pub streams: usize,
}

/// Timing report of one task's GPU execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTaskReport {
    /// When the task's first device operation was issued.
    pub start: SimTime,
    /// When its last operation (the D2H of `C'`) completed.
    pub end: SimTime,
}

impl GpuTaskReport {
    /// Wall-clock the task occupied the device path.
    pub fn elapsed_secs(&self) -> f64 {
        self.end.since(self.start)
    }
}

/// Executes a [`GpuWork`] summary with the *streamed* schedule: H2D copies
/// are split into `streams` chunks that overlap kernel execution, the way
/// Algorithm 1 pipelines B-block copies against kernel calls.
pub fn execute_streamed(device: &mut GpuDevice, ready: SimTime, work: &GpuWork) -> GpuTaskReport {
    let mut ss = StreamSet::new(work.streams.max(1), device);
    let n = ss.len();
    let chunk_bytes = work.h2d_bytes / n as u64;
    let calls_per_stream = (work.kernel_calls as usize).div_ceil(n).max(1);
    let flops_per_call = (work.dense_flops + work.sparse_flops) / work.kernel_calls.max(1) as f64;
    let sparse = work.sparse_flops > work.dense_flops;

    let start = ready.max(device.free_at().min(ready));
    for s in 0..n {
        let bytes = if s == n - 1 {
            work.h2d_bytes - chunk_bytes * (n as u64 - 1)
        } else {
            chunk_bytes
        };
        ss.h2d(device, s, ready, bytes);
        // The stream's kernels are serial: issue them as one batch.
        ss.kernel_batch(
            device,
            s,
            ready,
            flops_per_call * calls_per_stream as f64,
            calls_per_stream as u64,
            sparse,
        );
    }
    let all_done = ss.sync_all();
    let end = if work.d2h_bytes > 0 {
        ss.d2h(device, 0, all_done, work.d2h_bytes)
    } else {
        all_done
    };
    GpuTaskReport { start, end }
}

/// Executes a [`GpuWork`] summary with the *naive* schedule of §4.3: copy
/// the entire subcuboid first, run every kernel, then copy the result back —
/// no copy/kernel overlap. Used for the streaming ablation.
pub fn execute_naive(device: &mut GpuDevice, ready: SimTime, work: &GpuWork) -> GpuTaskReport {
    let (start, copied) = device.h2d_copy(ready, work.h2d_bytes);
    let calls = work.kernel_calls.max(1);
    let sparse = work.sparse_flops > work.dense_flops;
    let (_, t) =
        device.launch_kernel_batch(copied, work.dense_flops + work.sparse_flops, calls, sparse);
    let end = if work.d2h_bytes > 0 {
        device.d2h_copy(t, work.d2h_bytes).1
    } else {
        t
    };
    GpuTaskReport { start, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn device() -> GpuDevice {
        let mut cfg = GpuConfig::tiny(1 << 20);
        cfg.h2d_bytes_per_sec = 100.0;
        cfg.d2h_bytes_per_sec = 100.0;
        cfg.kernel_flops_per_sec = 100.0;
        cfg.sparse_flops_per_sec = 20.0;
        cfg.kernel_launch_secs = 0.0;
        cfg.max_concurrent_streams = 8;
        GpuDevice::new(cfg)
    }

    fn work() -> GpuWork {
        GpuWork {
            h2d_bytes: 400,
            d2h_bytes: 100,
            dense_flops: 400.0,
            sparse_flops: 0.0,
            kernel_calls: 4,
            streams: 4,
        }
    }

    #[test]
    fn streamed_beats_naive() {
        let mut d1 = device();
        let naive = execute_naive(&mut d1, SimTime::ZERO, &work());
        let mut d2 = device();
        let streamed = execute_streamed(&mut d2, SimTime::ZERO, &work());
        // Naive: 4s copy + 4s kernel + 1s d2h = 9s.
        assert!((naive.elapsed_secs() - 9.0).abs() < 1e-9);
        // Streamed overlaps copies with kernels: strictly faster.
        assert!(streamed.elapsed_secs() < naive.elapsed_secs());
        // Same total data and flops either way.
        assert_eq!(d1.h2d_bytes(), d2.h2d_bytes());
        assert_eq!(d1.d2h_bytes(), d2.d2h_bytes());
    }

    #[test]
    fn naive_timeline_is_strictly_sequential() {
        let mut d = device();
        let r = execute_naive(&mut d, SimTime::ZERO, &work());
        assert_eq!(r.start.as_secs(), 0.0);
        assert_eq!(r.end.as_secs(), 9.0);
        assert_eq!(d.kernels_launched(), 4);
    }

    #[test]
    fn zero_d2h_skips_copy_back() {
        let mut d = device();
        let mut w = work();
        w.d2h_bytes = 0;
        let r = execute_naive(&mut d, SimTime::ZERO, &w);
        assert_eq!(r.end.as_secs(), 8.0);
        assert_eq!(d.d2h_bytes(), 0);
    }

    #[test]
    fn sparse_work_uses_sparse_rate() {
        let mut d = device();
        let w = GpuWork {
            h2d_bytes: 0,
            d2h_bytes: 0,
            dense_flops: 0.0,
            sparse_flops: 100.0,
            kernel_calls: 1,
            streams: 1,
        };
        let r = execute_naive(&mut d, SimTime::ZERO, &w);
        // Sparse rate in tiny config is kernel rate / 5 = 20 flops/s.
        assert!(r.elapsed_secs() > 1.0);
    }

    #[test]
    fn back_to_back_tasks_share_the_device() {
        // MPS: a second task's work queues behind the first on the engines.
        let mut d = device();
        let r1 = execute_naive(&mut d, SimTime::ZERO, &work());
        let r2 = execute_naive(&mut d, SimTime::ZERO, &work());
        assert!(r2.end > r1.end);
    }
}
