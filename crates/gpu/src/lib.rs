//! # distme-gpu — simulated GPU device
//!
//! The paper accelerates DistME's local-multiplication step with NVIDIA
//! GPUs (GTX 1080 Ti: 11 GB device memory, PCI-E 3.0 x16), CUDA streams, and
//! the CUDA Multi-Process Service (MPS) so several Spark tasks can share one
//! device (§4). No GPU is available in this environment, so this crate
//! provides a *simulated device* that reproduces the decisions and costs the
//! paper's method is about:
//!
//! * **device memory** accounting against the per-task budget θg (§4.1:
//!   "six tasks ... 12 GB device memory, θg is only 2 GB");
//! * a **PCI-E transfer engine** per direction: H2D copies serialize on one
//!   copy engine ("H2D copies of these streams cannot overlap with each
//!   other", §4.3), D2H runs on the opposite direction;
//! * a **kernel engine** modelling the SM array as a fixed-rate f64 FLOP
//!   server (`cublasDgemm`/`cusparseDcsrmm` saturate the device, so
//!   concurrent kernels time-share without throughput gain);
//! * **streams** ([`StreamSet`]) ordering copies and kernels the way
//!   Algorithm 1 issues them, letting copy/kernel overlap hide PCI-E
//!   latency;
//! * **MPS** semantics for free: several simulated tasks interleave requests
//!   on the same shared device, exactly like kernel submission through MPS;
//! * a **busy tracker** measuring kernel-engine utilization, reproducing the
//!   `nvidia-smi`-measured GPU core utilization of Fig. 7(g).
//!
//! Real (laptop-scale) executions verify Algorithm 1's *schedule* produces
//! bit-correct results by running the kernels on the CPU; the simulated
//! device supplies the timing and memory behaviour at paper scale.

pub mod config;
pub mod device;
pub mod stream;
pub mod work;

pub use config::GpuConfig;
pub use device::GpuDevice;
pub use stream::StreamSet;
pub use work::{GpuTaskReport, GpuWork};
