//! GPU device configuration and the paper's calibration.

/// Configuration of a simulated GPU device.
///
/// Defaults are calibrated to the paper's testbed: one NVIDIA GTX 1080 Ti
/// per node (11 GB device memory) on PCI-E 3.0 x16, with `Tc = 10`
/// concurrent tasks sharing the device through MPS so θg = 1 GB (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Total device memory in bytes (GTX 1080 Ti: 11 GB).
    pub device_mem_bytes: u64,
    /// Per-task device-memory budget θg in bytes (paper: 1 GB with Tc = 10).
    pub task_mem_bytes: u64,
    /// Effective host-to-device copy bandwidth, bytes/s. PCI-E 3.0 x16 is
    /// 16 GB/s nominal; ~11 GB/s is a realistic pinned-memory rate ("the
    /// bandwidth of PCI-E bus ... is usually up to 16 GB/s", §4.2).
    pub h2d_bytes_per_sec: f64,
    /// Effective device-to-host copy bandwidth, bytes/s.
    pub d2h_bytes_per_sec: f64,
    /// Sustained f64 GEMM throughput of the SM array, FLOP/s. The GTX
    /// 1080 Ti's nominal FP64 rate is 1/32 of FP32 ≈ 0.35 TFLOP/s; the
    /// paper's measured CuboidMM times imply an effective local-mult rate
    /// of ~0.5 TFLOP/s per device (copy/kernel overlap plus mixed
    /// dense/sparse kernels on 0.5-sparse blocks), which this default
    /// calibrates to.
    pub kernel_flops_per_sec: f64,
    /// Sustained f64 sparse (csrmm) throughput, FLOP/s — csrmm on
    /// hypersparse blocks is memory-latency-bound, two orders below the
    /// dense rate (calibrated against Fig. 7(g)'s sparse utilization).
    pub sparse_flops_per_sec: f64,
    /// Fixed per-kernel-launch overhead, seconds (~5 µs CUDA launch +
    /// cuBLAS setup).
    pub kernel_launch_secs: f64,
    /// Limit on concurrently resident streams per device ("there is usually
    /// a limitation on the number of concurrent streams per GPU (e.g. 32)",
    /// §4.4).
    pub max_concurrent_streams: usize,
}

impl GpuConfig {
    /// The paper's per-node device: GTX 1080 Ti shared by `Tc = 10` tasks.
    pub fn gtx_1080_ti() -> Self {
        GpuConfig {
            device_mem_bytes: 11 * 1_000_000_000,
            task_mem_bytes: 1_000_000_000,
            h2d_bytes_per_sec: 11.0e9,
            d2h_bytes_per_sec: 11.0e9,
            kernel_flops_per_sec: 0.5e12,
            sparse_flops_per_sec: 0.025e12,
            kernel_launch_secs: 10.0e-6,
            max_concurrent_streams: 32,
        }
    }

    /// A tiny device for laptop-scale tests: forces multi-subcuboid
    /// iteration on small matrices.
    pub fn tiny(task_mem_bytes: u64) -> Self {
        GpuConfig {
            device_mem_bytes: task_mem_bytes * 4,
            task_mem_bytes,
            h2d_bytes_per_sec: 1.0e9,
            d2h_bytes_per_sec: 1.0e9,
            kernel_flops_per_sec: 1.0e9,
            sparse_flops_per_sec: 0.2e9,
            kernel_launch_secs: 1.0e-6,
            max_concurrent_streams: 4,
        }
    }

    /// Validates the configuration, panicking on nonsensical values
    /// (configuration is programmer input, not user data).
    pub fn assert_valid(&self) {
        assert!(self.device_mem_bytes > 0, "device memory must be positive");
        assert!(
            self.task_mem_bytes > 0 && self.task_mem_bytes <= self.device_mem_bytes,
            "per-task budget must fit the device"
        );
        assert!(self.h2d_bytes_per_sec > 0.0 && self.d2h_bytes_per_sec > 0.0);
        assert!(self.kernel_flops_per_sec > 0.0 && self.sparse_flops_per_sec > 0.0);
        assert!(self.max_concurrent_streams > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_is_valid() {
        let c = GpuConfig::gtx_1080_ti();
        c.assert_valid();
        assert_eq!(c.task_mem_bytes, 1_000_000_000);
        assert_eq!(c.max_concurrent_streams, 32);
    }

    #[test]
    fn tiny_device_is_valid() {
        GpuConfig::tiny(1 << 20).assert_valid();
    }

    #[test]
    #[should_panic(expected = "per-task budget")]
    fn oversized_task_budget_rejected() {
        let mut c = GpuConfig::gtx_1080_ti();
        c.task_mem_bytes = c.device_mem_bytes + 1;
        c.assert_valid();
    }
}
