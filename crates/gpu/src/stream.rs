//! CUDA-stream semantics on the simulated device.
//!
//! Algorithm 1 creates `J'` streams per task and, per B-block, issues an
//! async H2D copy followed by `I'` kernel calls on the *same* stream (§4.3,
//! Fig. 5(b)). A stream is an ordered queue: each operation starts no
//! earlier than the completion of the previous operation on that stream,
//! while different streams overlap — subject to the shared engines
//! (one H2D copy engine, one kernel engine).

use crate::device::GpuDevice;
use distme_sim::SimTime;

/// A set of virtual CUDA streams owned by one task.
///
/// If more streams are requested than the device supports concurrently, the
/// extras wrap onto existing streams — "these streams are arranged and
/// executed by the GPU scheduler" (§4.4).
#[derive(Debug, Clone)]
pub struct StreamSet {
    /// Completion time of the last operation issued on each stream.
    tails: Vec<SimTime>,
}

impl StreamSet {
    /// Creates `requested` streams on a device allowing
    /// `max_concurrent_streams`.
    pub fn new(requested: usize, device: &GpuDevice) -> Self {
        let n = requested.max(1).min(device.config().max_concurrent_streams);
        StreamSet {
            tails: vec![SimTime::ZERO; n],
        }
    }

    /// Number of physical streams backing the set.
    pub fn len(&self) -> usize {
        self.tails.len()
    }

    /// True when the set has no streams (never happens in practice).
    pub fn is_empty(&self) -> bool {
        self.tails.is_empty()
    }

    fn slot(&self, stream: usize) -> usize {
        stream % self.tails.len()
    }

    /// Issues an H2D copy on `stream`, not before `ready`. Returns its
    /// completion time.
    pub fn h2d(
        &mut self,
        device: &mut GpuDevice,
        stream: usize,
        ready: SimTime,
        bytes: u64,
    ) -> SimTime {
        let s = self.slot(stream);
        let issue = ready.max(self.tails[s]);
        let (_, done) = device.h2d_copy(issue, bytes);
        self.tails[s] = done;
        done
    }

    /// Issues a kernel on `stream`. Returns its completion time.
    pub fn kernel(
        &mut self,
        device: &mut GpuDevice,
        stream: usize,
        ready: SimTime,
        flops: f64,
        sparse: bool,
    ) -> SimTime {
        self.kernel_batch(device, stream, ready, flops, 1, sparse)
    }

    /// Issues `calls` consecutive kernels on `stream` as one batch (they
    /// would serialize on the stream regardless). Returns the completion
    /// time of the last.
    pub fn kernel_batch(
        &mut self,
        device: &mut GpuDevice,
        stream: usize,
        ready: SimTime,
        flops: f64,
        calls: u64,
        sparse: bool,
    ) -> SimTime {
        let s = self.slot(stream);
        let issue = ready.max(self.tails[s]);
        let (_, done) = device.launch_kernel_batch(issue, flops, calls, sparse);
        self.tails[s] = done;
        done
    }

    /// Issues a D2H copy on `stream`. Returns its completion time.
    pub fn d2h(
        &mut self,
        device: &mut GpuDevice,
        stream: usize,
        ready: SimTime,
        bytes: u64,
    ) -> SimTime {
        let s = self.slot(stream);
        let issue = ready.max(self.tails[s]);
        let (_, done) = device.d2h_copy(issue, bytes);
        self.tails[s] = done;
        done
    }

    /// Synchronization barrier: time when every stream has drained.
    pub fn sync_all(&self) -> SimTime {
        self.tails.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn device() -> GpuDevice {
        let mut cfg = GpuConfig::tiny(1 << 20);
        cfg.h2d_bytes_per_sec = 100.0;
        cfg.d2h_bytes_per_sec = 100.0;
        cfg.kernel_flops_per_sec = 100.0;
        cfg.kernel_launch_secs = 0.0;
        cfg.max_concurrent_streams = 4;
        GpuDevice::new(cfg)
    }

    #[test]
    fn stream_orders_its_own_ops() {
        let mut dev = device();
        let mut ss = StreamSet::new(2, &dev);
        let copy_done = ss.h2d(&mut dev, 0, SimTime::ZERO, 100); // [0,1]
        let k_done = ss.kernel(&mut dev, 0, SimTime::ZERO, 100.0, false);
        // Kernel waits for its stream's copy even though engine was free.
        assert_eq!(copy_done.as_secs(), 1.0);
        assert_eq!(k_done.as_secs(), 2.0);
    }

    #[test]
    fn streams_overlap_copy_and_kernel() {
        let mut dev = device();
        let mut ss = StreamSet::new(2, &dev);
        // Stream 0: copy [0,1], kernel [1,2].
        ss.h2d(&mut dev, 0, SimTime::ZERO, 100);
        ss.kernel(&mut dev, 0, SimTime::ZERO, 100.0, false);
        // Stream 1: copy [1,2] (H2D engine serialized), kernel [2,3].
        ss.h2d(&mut dev, 1, SimTime::ZERO, 100);
        let done = ss.kernel(&mut dev, 1, SimTime::ZERO, 100.0, false);
        // Stream 1's copy overlapped stream 0's kernel: total 3s, not 4s.
        assert_eq!(done.as_secs(), 3.0);
        assert_eq!(ss.sync_all().as_secs(), 3.0);
    }

    #[test]
    fn stream_wrap_respects_device_limit() {
        let dev = device();
        let ss = StreamSet::new(100, &dev);
        assert_eq!(ss.len(), 4);
    }

    #[test]
    fn wrapped_streams_share_a_tail() {
        let mut dev = device();
        let mut ss = StreamSet::new(1, &dev);
        ss.h2d(&mut dev, 0, SimTime::ZERO, 100);
        // Stream index 5 wraps onto stream 0 and must queue behind it.
        let done = ss.h2d(&mut dev, 5, SimTime::ZERO, 100);
        assert_eq!(done.as_secs(), 2.0);
    }

    #[test]
    fn d2h_ordered_after_stream_work() {
        let mut dev = device();
        let mut ss = StreamSet::new(1, &dev);
        ss.kernel(&mut dev, 0, SimTime::ZERO, 200.0, false); // [0,2]
        let done = ss.d2h(&mut dev, 0, SimTime::ZERO, 100);
        assert_eq!(done.as_secs(), 3.0);
    }
}
