//! The simulated device: copy engines, kernel engine, memory, utilization.

use crate::config::GpuConfig;
use distme_sim::{BusyTracker, FifoServer, Gauge, SimTime};

/// A simulated GPU shared by every task on a node (via MPS, §4.1).
///
/// Three contended engines, each a virtual-time FIFO server:
/// * the H2D copy engine (one direction of the PCI-E bus),
/// * the D2H copy engine (the opposite direction),
/// * the kernel engine (the SM array, serving FLOPs at the device rate —
///   concurrent kernels from different streams/tasks time-share it).
#[derive(Debug, Clone)]
pub struct GpuDevice {
    cfg: GpuConfig,
    h2d: FifoServer,
    d2h: FifoServer,
    /// Serves kernel *durations* (rate 1.0 s/s) so dense and sparse kernels
    /// with different throughputs share one engine.
    kernel_engine: FifoServer,
    kernel_busy: BusyTracker,
    mem: Gauge,
    kernels_launched: u64,
}

impl GpuDevice {
    /// Creates a device from a validated configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.assert_valid();
        GpuDevice {
            cfg,
            h2d: FifoServer::new(cfg.h2d_bytes_per_sec),
            d2h: FifoServer::new(cfg.d2h_bytes_per_sec),
            kernel_engine: FifoServer::new(1.0),
            kernel_busy: BusyTracker::new(),
            mem: Gauge::new(cfg.device_mem_bytes),
            kernels_launched: 0,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Device-memory gauge (allocation tracking / invariant checks).
    pub fn memory(&mut self) -> &mut Gauge {
        &mut self.mem
    }

    /// Host→device copy of `bytes`, ready at `ready`. Returns
    /// `(start, done)`. Copies serialize on the single H2D engine (§4.3).
    pub fn h2d_copy(&mut self, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.h2d.request(ready, bytes as f64)
    }

    /// Device→host copy of `bytes`.
    pub fn d2h_copy(&mut self, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.d2h.request(ready, bytes as f64)
    }

    /// Launches a kernel of `flops` floating-point operations; `sparse`
    /// selects the csrmm rate instead of the dense GEMM rate.
    /// Returns `(start, done)`.
    pub fn launch_kernel(
        &mut self,
        ready: SimTime,
        flops: f64,
        sparse: bool,
    ) -> (SimTime, SimTime) {
        self.launch_kernel_batch(ready, flops, 1, sparse)
    }

    /// Launches `calls` back-to-back kernels totalling `flops` as one
    /// engine reservation — kernels issued consecutively on one stream are
    /// serial anyway, so batching them preserves the timeline while
    /// keeping the simulation O(streams) instead of O(voxels).
    pub fn launch_kernel_batch(
        &mut self,
        ready: SimTime,
        flops: f64,
        calls: u64,
        sparse: bool,
    ) -> (SimTime, SimTime) {
        let rate = if sparse {
            self.cfg.sparse_flops_per_sec
        } else {
            self.cfg.kernel_flops_per_sec
        };
        let duration = self.cfg.kernel_launch_secs * calls as f64 + flops / rate;
        let (start, done) = self.kernel_engine.request(ready, duration);
        self.kernel_busy.record(start, done);
        self.kernels_launched += calls;
        (start, done)
    }

    /// Time when all three engines are idle.
    pub fn free_at(&self) -> SimTime {
        self.h2d
            .free_at()
            .max(self.d2h.free_at())
            .max(self.kernel_engine.free_at())
    }

    /// Kernel-engine busy seconds (merged).
    pub fn kernel_busy_secs(&self) -> f64 {
        self.kernel_busy.busy_secs()
    }

    /// Kernel-engine utilization over a window — the Fig. 7(g) metric.
    pub fn kernel_utilization(&self, start: SimTime, end: SimTime) -> f64 {
        self.kernel_busy.utilization(start, end)
    }

    /// Total kernels launched (Algorithm 1 issues `I'` per B-block copy).
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Total bytes moved host→device.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.total_served() as u64
    }

    /// Total bytes moved device→host.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.total_served() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        let mut cfg = GpuConfig::tiny(1 << 20);
        cfg.h2d_bytes_per_sec = 100.0;
        cfg.d2h_bytes_per_sec = 50.0;
        cfg.kernel_flops_per_sec = 1000.0;
        cfg.sparse_flops_per_sec = 100.0;
        cfg.kernel_launch_secs = 0.0;
        GpuDevice::new(cfg)
    }

    #[test]
    fn h2d_serializes_d2h_independent() {
        let mut d = device();
        let (_, c1) = d.h2d_copy(SimTime::ZERO, 100); // 1s
        let (s2, c2) = d.h2d_copy(SimTime::ZERO, 100); // waits
        assert_eq!(c1.as_secs(), 1.0);
        assert_eq!(s2.as_secs(), 1.0);
        assert_eq!(c2.as_secs(), 2.0);
        // D2H direction is free.
        let (s3, c3) = d.d2h_copy(SimTime::ZERO, 50);
        assert_eq!(s3.as_secs(), 0.0);
        assert_eq!(c3.as_secs(), 1.0);
        assert_eq!(d.h2d_bytes(), 200);
        assert_eq!(d.d2h_bytes(), 50);
    }

    #[test]
    fn kernel_rates_differ_by_sparsity() {
        let mut d = device();
        let (_, dense_done) = d.launch_kernel(SimTime::ZERO, 1000.0, false);
        assert_eq!(dense_done.as_secs(), 1.0);
        let (_, sparse_done) = d.launch_kernel(SimTime::ZERO, 1000.0, true);
        // Starts after the dense kernel (engine is FIFO), runs 10s.
        assert_eq!(sparse_done.as_secs(), 11.0);
        assert_eq!(d.kernels_launched(), 2);
        assert_eq!(d.kernel_busy_secs(), 11.0);
    }

    #[test]
    fn utilization_accounts_for_gaps() {
        let mut d = device();
        d.launch_kernel(SimTime::ZERO, 1000.0, false); // busy [0,1]
        d.launch_kernel(SimTime::from_secs(3.0), 1000.0, false); // busy [3,4]
        let u = d.kernel_utilization(SimTime::ZERO, SimTime::from_secs(4.0));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn free_at_is_max_over_engines() {
        let mut d = device();
        d.h2d_copy(SimTime::ZERO, 1000); // 10s
        d.launch_kernel(SimTime::ZERO, 2000.0, false); // 2s
        assert_eq!(d.free_at().as_secs(), 10.0);
    }

    #[test]
    fn memory_gauge_enforces_device_capacity() {
        let mut d = device();
        let cap = d.config().device_mem_bytes;
        d.memory().alloc(cap).unwrap();
        assert!(d.memory().alloc(1).is_err());
    }
}
