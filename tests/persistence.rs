//! Storage round-trips through the distributed pipeline: matrices written
//! with the I/O layer must multiply to the same product after reload —
//! the §5 "read and write matrix data with HDFS" path.

use distme::matrix::io;
use distme::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("distme-persistence-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn bbm_reload_multiplies_identically() {
    let meta_a = MatrixMeta::sparse(96, 64, 0.3).with_block_size(32);
    let meta_b = MatrixMeta::dense(64, 48).with_block_size(32);
    let a = MatrixGenerator::with_seed(1).generate(&meta_a).unwrap();
    let b = MatrixGenerator::with_seed(2).generate(&meta_b).unwrap();

    let pa = tmp("a.bbm");
    let pb = tmp("b.bbm");
    io::write_bbm(&pa, &a).unwrap();
    io::write_bbm(&pb, &b).unwrap();
    let a2 = io::read_bbm(&pa).unwrap();
    let b2 = io::read_bbm(&pb).unwrap();

    let cluster = LocalCluster::new(ClusterConfig::laptop());
    let (c1, _) = real_exec::multiply(&cluster, &a, &b, MulMethod::CuboidAuto).unwrap();
    let (c2, _) = real_exec::multiply(&cluster, &a2, &b2, MulMethod::CuboidAuto).unwrap();
    assert_eq!(
        c1.max_abs_diff(&c2),
        Some(0.0),
        "reload changed the product"
    );
}

#[test]
fn matrix_market_interchange_with_gnmf() {
    // Export a rating matrix to MatrixMarket, reload it (even with a
    // different block size), and check GNMF sees the same objective.
    let dataset = RatingDataset {
        name: "mini",
        users: 96,
        items: 64,
        ratings: 900,
    };
    let v = dataset.materialize(32, 5).unwrap();
    let p = tmp("ratings.mtx");
    io::write_matrix_market(&p, &v).unwrap();
    // Reblocking on load preserves the elements...
    let reblocked = io::read_matrix_market(&p, 16).unwrap();
    assert_eq!(v.nnz(), reblocked.nnz());
    for i in 0..dataset.users {
        for j in 0..dataset.items {
            assert!(
                (v.get_element(i, j) - reblocked.get_element(i, j)).abs() < 1e-12,
                "element ({i}, {j}) changed across block sizes"
            );
        }
    }
    // ...and a same-block-size reload reproduces GNMF exactly (the random
    // factor initialization is block-seeded, so block size must match for
    // a bitwise-identical trajectory).
    let v2 = io::read_matrix_market(&p, 32).unwrap();

    let cfg = GnmfConfig {
        factor_dim: 8,
        iterations: 3,
    };
    let mut s1 = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let r1 = gnmf::run_real(&mut s1, &v, &cfg, 7).unwrap();
    let mut s2 = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let r2 = gnmf::run_real(&mut s2, &v2, &cfg, 7).unwrap();
    for (a, b) in r1.objective.iter().zip(r2.objective.iter()) {
        assert!(
            (a - b).abs() < 1e-6 * a.max(1.0),
            "objective diverged after reload: {a} vs {b}"
        );
    }
}

#[test]
fn saved_results_can_be_reloaded_and_extended() {
    // Persist a GNMF factor, reload, and run more iterations from it — the
    // checkpoint/restart pattern long factorizations need.
    let v = RatingDataset {
        name: "mini",
        users: 64,
        items: 48,
        ratings: 600,
    }
    .materialize(16, 9)
    .unwrap();
    let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let first = gnmf::run_real(
        &mut s,
        &v,
        &GnmfConfig {
            factor_dim: 8,
            iterations: 2,
        },
        3,
    )
    .unwrap();
    let pw = tmp("w.bbm");
    io::write_bbm(&pw, &first.w).unwrap();
    let w = io::read_bbm(&pw).unwrap();
    assert_eq!(w.meta().rows, 64);
    assert_eq!(w.meta().cols, 8);
    // The reloaded factor still reconstructs V as well as the saved one.
    let wh_saved = first.w.multiply(&first.h).unwrap();
    let wh_loaded = w.multiply(&first.h).unwrap();
    assert_eq!(wh_saved.max_abs_diff(&wh_loaded), Some(0.0));
}
