//! The paper's headline quantitative claims, checked against this
//! reproduction's measurements (loose bounds — we assert the claimed
//! effect exists and points the right way, not the exact factor; see
//! EXPERIMENTS.md for the exact numbers).

use distme::prelude::*;

fn simulate(n: (u64, u64, u64), m: MulMethod) -> Result<JobStats, JobError> {
    let p = MatmulProblem::new(
        MatrixMeta::sparse(n.0, n.1, 0.5),
        MatrixMeta::sparse(n.1, n.2, 0.5),
    )
    .expect("consistent");
    let mut sim = SimCluster::new(ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX));
    sim_exec::simulate(&mut sim, &p, m)
}

#[test]
fn abstract_claim_speedup_up_to_3_92x_over_second_best() {
    // "CuboidMM improves the elapsed time up to by 3.92 times ... compared
    // with the existing methods" — measured at 10K x 5M x 10K vs CPMM.
    let cuboid = simulate((10_000, 5_000_000, 10_000), MulMethod::CuboidAuto).expect("runs");
    let cpmm = simulate((10_000, 5_000_000, 10_000), MulMethod::Cpmm).expect("runs");
    let speedup = cpmm.elapsed_secs / cuboid.elapsed_secs;
    assert!(
        speedup > 1.5,
        "expected a substantial speedup at 5M (paper: 3.92x), got {speedup:.2}x"
    );
}

#[test]
fn abstract_claim_comm_reduction_up_to_60x() {
    // "reduces the communication cost up to by 60.39 times" — same point.
    let cuboid = simulate((10_000, 5_000_000, 10_000), MulMethod::CuboidAuto).expect("runs");
    let cpmm = simulate((10_000, 5_000_000, 10_000), MulMethod::Cpmm).expect("runs");
    let reduction = cpmm.communication_bytes() as f64 / cuboid.communication_bytes() as f64;
    // Paper: 60.39x (K = 5000 partitions vs R* ≈ 176). Our optimizer picks
    // a similar R*, so the reduction should be within the same decade.
    assert!(
        reduction > 4.0,
        "expected large communication reduction (paper: 60.4x), got {reduction:.1}x"
    );
}

#[test]
fn section_6_2_comm_reduction_at_100k_cubed() {
    // "When N = 100K, CuboidMM reduces the amount of transferred data by
    // 8.17 times compared with CPMM and 19.46 times compared with RMM."
    let cuboid = simulate((100_000, 100_000, 100_000), MulMethod::CuboidAuto).expect("runs");
    let cpmm = simulate((100_000, 100_000, 100_000), MulMethod::Cpmm).expect("runs");
    let rmm = simulate((100_000, 100_000, 100_000), MulMethod::Rmm).expect("runs");
    let vs_cpmm = cpmm.communication_bytes() as f64 / cuboid.communication_bytes() as f64;
    let vs_rmm = rmm.communication_bytes() as f64 / cuboid.communication_bytes() as f64;
    assert!(vs_cpmm > 2.0, "vs CPMM: {vs_cpmm:.1}x (paper 8.17x)");
    assert!(vs_rmm > 5.0, "vs RMM: {vs_rmm:.1}x (paper 19.46x)");
    assert!(vs_rmm > vs_cpmm, "RMM must shuffle more than CPMM");
}

#[test]
fn section_6_2_gap_grows_with_matrix_size() {
    // "the improvement of CuboidMM compared with the existing methods
    // becomes more marked as the matrix sizes get larger" (3.86x at 70K
    // up to 6.11x at 100K vs RMM).
    let ratio = |n: u64| {
        let cuboid = simulate((n, n, n), MulMethod::CuboidAuto).expect("runs");
        let rmm = simulate((n, n, n), MulMethod::Rmm).expect("runs");
        rmm.elapsed_secs / cuboid.elapsed_secs
    };
    let at_70k = ratio(70_000);
    let at_100k = ratio(100_000);
    assert!(at_70k > 2.0, "70K speedup {at_70k:.2}x (paper 3.86x)");
    assert!(
        at_100k > at_70k,
        "speedup must grow with N: {at_70k:.2}x -> {at_100k:.2}x"
    );
}

#[test]
fn section_6_3_distme_outperforms_both_systems() {
    // Fig. 7(a) at 40K: DistME beats SystemML in both variants, and the
    // GPU improves DistME more than it improves SystemML.
    let cfgs = [
        ClusterConfig::paper_cluster().with_timeout(f64::MAX),
        ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX),
    ];
    let p = MatmulProblem::new(
        MatrixMeta::sparse(40_000, 40_000, 0.5),
        MatrixMeta::sparse(40_000, 40_000, 0.5),
    )
    .expect("consistent");
    let mut results = Vec::new();
    for cfg in cfgs {
        for profile in [SystemProfile::SystemMl, SystemProfile::DistMe] {
            let resolved = profile.resolve(&p, &cfg);
            let mut sim = SimCluster::new(cfg);
            let stats = sim_exec::simulate_resolved(&mut sim, &p, &resolved).expect("runs");
            results.push(stats.elapsed_secs);
        }
    }
    let (sysml_c, distme_c, sysml_g, distme_g) = (results[0], results[1], results[2], results[3]);
    assert!(
        distme_c < sysml_c,
        "CPU: DistME {distme_c:.0} vs SystemML {sysml_c:.0}"
    );
    assert!(
        distme_g < sysml_g,
        "GPU: DistME {distme_g:.0} vs SystemML {sysml_g:.0}"
    );
    let distme_gain = distme_c / distme_g;
    assert!(
        distme_gain > 1.5,
        "GPU should clearly accelerate DistME: {distme_gain:.2}x"
    );
}

#[test]
fn section_6_3_gpu_utilization_ordering() {
    // Fig. 7(g): DistME's GPU utilization beats MatFast's and SystemML's
    // on dense workloads (98.4 vs 72.8 / 69.2 in the paper).
    let cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
    let p = MatmulProblem::new(
        MatrixMeta::sparse(30_000, 30_000, 0.5),
        MatrixMeta::sparse(30_000, 30_000, 0.5),
    )
    .expect("consistent");
    let util = |profile: SystemProfile| {
        let resolved = profile.resolve(&p, &cfg);
        let mut sim = SimCluster::new(cfg);
        sim_exec::simulate_resolved(&mut sim, &p, &resolved)
            .expect("runs")
            .gpu_utilization
            .expect("gpu ran")
    };
    let distme = util(SystemProfile::DistMe);
    let sysml = util(SystemProfile::SystemMl);
    let matfast = util(SystemProfile::MatFast);
    assert!(distme > sysml, "DistME {distme:.2} vs SystemML {sysml:.2}");
    assert!(
        distme > matfast,
        "DistME {distme:.2} vs MatFast {matfast:.2}"
    );
}

#[test]
fn section_6_4_gnmf_ordering_and_scaling() {
    // Fig. 8: DistME(G) fastest on every dataset; the gap grows with
    // dataset size ("the performance gap gets larger as the data size
    // increases": 1.2x on MovieLens -> 1.92x on YahooMusic vs SystemML).
    let speedup = |dataset: &RatingDataset| {
        let mk = || {
            let mut c = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
            c.wire_compression_ratio = 0.5;
            c
        };
        let gnmf_cfg = GnmfConfig {
            factor_dim: 200,
            iterations: 2,
        };
        let distme = gnmf::simulate(mk(), SystemProfile::DistMe, dataset, &gnmf_cfg).expect("runs");
        let sysml =
            gnmf::simulate(mk(), SystemProfile::SystemMl, dataset, &gnmf_cfg).expect("runs");
        sysml.total_secs() / distme.total_secs()
    };
    let movielens = speedup(&RatingDataset::MOVIELENS);
    let yahoo = speedup(&RatingDataset::YAHOO_MUSIC);
    assert!(movielens > 1.0, "MovieLens speedup {movielens:.2}x");
    assert!(
        yahoo > movielens,
        "gap must grow: {movielens:.2}x -> {yahoo:.2}x"
    );
}

#[test]
fn section_6_5_distme_vs_hpc_crossover() {
    use distme::core::summa::{self, HpcSystem, SummaConfig};
    // Table 5: ScaLAPACK wins at 10K^3; DistME wins from 50K^3 up and is
    // ~3x faster on the common-large-dimension type.
    let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    let sl = |p: &MatmulProblem| {
        summa::simulate(&cfg, p, HpcSystem::ScaLapack, &SummaConfig::default())
            .expect("runs")
            .elapsed_secs
    };
    let dm = |p: &MatmulProblem| {
        let mut sim = SimCluster::new(cfg);
        sim_exec::simulate(&mut sim, p, MulMethod::CuboidAuto)
            .expect("runs")
            .elapsed_secs
    };
    let big = MatmulProblem::dense(50_000, 50_000, 50_000);
    assert!(dm(&big) < sl(&big), "DistME must win at 50K^3");
    let common = MatmulProblem::dense(5_000, 1_000_000, 5_000);
    let ratio = sl(&common) / dm(&common);
    assert!(ratio > 2.0, "common-dim speedup {ratio:.2}x (paper ~3x)");
}
