//! Paper-scale failure matrix: every O.O.M. / T.O. / E.D.C. boundary the
//! paper's figures annotate, reproduced on the simulated cluster.

use distme::prelude::*;

fn sim(gpu: bool) -> SimCluster {
    SimCluster::new(if gpu {
        ClusterConfig::paper_cluster_gpu()
    } else {
        ClusterConfig::paper_cluster()
    })
}

fn run(cluster: &mut SimCluster, n: (u64, u64, u64), m: MulMethod) -> Result<JobStats, JobError> {
    let p = MatmulProblem::new(
        MatrixMeta::sparse(n.0, n.1, 0.5),
        MatrixMeta::sparse(n.1, n.2, 0.5),
    )
    .expect("consistent");
    sim_exec::simulate(cluster, &p, m)
}

#[test]
fn fig6a_bmm_oom_boundary_is_between_80k_and_90k() {
    // "The BMM method fails due to O.O.M. when N is larger than 80K" —
    // |B| crosses the 64 GB node memory between 80K (51 GB) and 90K (65 GB).
    assert!(run(&mut sim(true), (80_000, 80_000, 80_000), MulMethod::Bmm).is_ok());
    let err = run(&mut sim(true), (90_000, 90_000, 90_000), MulMethod::Bmm).unwrap_err();
    assert_eq!(err.annotation(), "O.O.M.");
}

#[test]
fn fig6b_bmm_oom_boundary_is_between_500k_and_1m() {
    // "BMM fails due to O.O.M. when N is larger than 500K" (10K x N x 10K).
    assert!(run(&mut sim(true), (10_000, 500_000, 10_000), MulMethod::Bmm).is_ok());
    let err = run(&mut sim(true), (10_000, 1_000_000, 10_000), MulMethod::Bmm).unwrap_err();
    assert_eq!(err.annotation(), "O.O.M.");
}

#[test]
fn fig6c_cpmm_oom_boundary_is_between_250k_and_500k() {
    // "CPMM fails due to O.O.M. even for the case of N = 500K" but ran at
    // 250K — the single k-task's |A| + |B| crosses θt at N ≈ 375K.
    assert!(run(&mut sim(true), (250_000, 1_000, 250_000), MulMethod::Cpmm).is_ok());
    let err = run(&mut sim(true), (500_000, 1_000, 500_000), MulMethod::Cpmm).unwrap_err();
    assert_eq!(err.annotation(), "O.O.M.");
}

#[test]
fn fig6c_bmm_oom_boundary_is_between_500k_and_750k() {
    // BMM's per-task final C row crosses θt = 6 GB exactly at N = 750K.
    assert!(run(&mut sim(true), (500_000, 1_000, 500_000), MulMethod::Bmm).is_ok());
    let err = run(&mut sim(true), (750_000, 1_000, 750_000), MulMethod::Bmm).unwrap_err();
    assert_eq!(err.annotation(), "O.O.M.");
}

#[test]
fn fig6c_rmm_times_out_at_750k_but_not_500k() {
    assert!(run(&mut sim(true), (500_000, 1_000, 500_000), MulMethod::Rmm).is_ok());
    let err = run(&mut sim(true), (750_000, 1_000, 750_000), MulMethod::Rmm).unwrap_err();
    assert_eq!(err.annotation(), "T.O.");
}

#[test]
fn cuboidmm_survives_every_fig6_extreme() {
    for dims in [
        (100_000, 100_000, 100_000),
        (10_000, 5_000_000, 10_000),
        (750_000, 1_000, 750_000),
    ] {
        let res = run(&mut sim(true), dims, MulMethod::CuboidAuto);
        assert!(res.is_ok(), "{dims:?}: {res:?}");
    }
}

#[test]
fn fig7c_systemml_edc_boundary_is_between_1m_and_1_5m() {
    // SystemML (RMM on N x 1K x 1M) writes J·|A| + I·|B| of replicated
    // data: ~26 TB at 1M fits the 36 TB disk, ~38 TB at 1.5M does not.
    let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    let mk_problem = |n: u64| {
        MatmulProblem::new(
            MatrixMeta::sparse(n, 1_000, 0.5),
            MatrixMeta::sparse(1_000, 1_000_000, 0.5),
        )
        .expect("consistent")
    };
    let run_sysml = |n: u64| {
        let p = mk_problem(n);
        let resolved = SystemProfile::SystemMl.resolve(&p, &cfg);
        let mut sim = SimCluster::new(cfg);
        sim_exec::simulate_resolved(&mut sim, &p, &resolved)
    };
    assert!(run_sysml(1_000_000).is_ok());
    assert_eq!(run_sysml(1_500_000).unwrap_err().annotation(), "E.D.C.");
    assert_eq!(run_sysml(2_000_000).unwrap_err().annotation(), "E.D.C.");
}

#[test]
fn fig7a_matfast_oom_boundary_is_between_30k_and_40k() {
    let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    let run_matfast = |n: u64| {
        let p = MatmulProblem::new(MatrixMeta::sparse(n, n, 0.5), MatrixMeta::sparse(n, n, 0.5))
            .expect("consistent");
        let resolved = SystemProfile::MatFast.resolve(&p, &cfg);
        let mut sim = SimCluster::new(cfg);
        sim_exec::simulate_resolved(&mut sim, &p, &resolved)
    };
    assert!(run_matfast(30_000).is_ok());
    assert_eq!(run_matfast(40_000).unwrap_err().annotation(), "O.O.M.");
}

#[test]
fn fig8d_matfast_gnmf_oom_boundary_is_factor_500() {
    // V·Hᵀ aside, the decisive op is W x (HHᵀ): CPMM with K = 1 block puts
    // the whole |W| = 1.8M x f x 8 B into one task — over θt from f = 500.
    let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    let run_gnmf = |f: u64| {
        gnmf::simulate(
            cfg,
            SystemProfile::MatFast,
            &RatingDataset::YAHOO_MUSIC,
            &GnmfConfig {
                factor_dim: f,
                iterations: 1,
            },
        )
    };
    assert!(run_gnmf(200).is_ok());
    assert_eq!(run_gnmf(500).unwrap_err().annotation(), "O.O.M.");
    assert_eq!(run_gnmf(1000).unwrap_err().annotation(), "O.O.M.");
    // DistME survives the full sweep.
    for f in [200, 500, 1000] {
        let res = gnmf::simulate(
            ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX),
            SystemProfile::DistMe,
            &RatingDataset::YAHOO_MUSIC,
            &GnmfConfig {
                factor_dim: f,
                iterations: 1,
            },
        );
        assert!(res.is_ok(), "DistME died at f = {f}: {res:?}");
    }
}

#[test]
fn table5_hpc_oom_rows() {
    use distme::core::summa::{self, HpcSystem, SummaConfig};
    let cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
    // 500K x 1K x 500K: both HPC systems O.O.M. (whole-array local C).
    let p = MatmulProblem::dense(500_000, 1_000, 500_000);
    for sys in [HpcSystem::ScaLapack, HpcSystem::SciDb] {
        let err = summa::simulate(&cfg, &p, sys, &SummaConfig::default()).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }
    // 5K x 5M x 5K: SciDB O.O.M. (double storage), ScaLAPACK survives.
    let p = MatmulProblem::dense(5_000, 5_000_000, 5_000);
    assert!(summa::simulate(&cfg, &p, HpcSystem::ScaLapack, &SummaConfig::default()).is_ok());
    assert_eq!(
        summa::simulate(&cfg, &p, HpcSystem::SciDb, &SummaConfig::default())
            .unwrap_err()
            .annotation(),
        "O.O.M."
    );
    // And DistME(C) completes both.
    for p in [
        MatmulProblem::dense(500_000, 1_000, 500_000),
        MatmulProblem::dense(5_000, 5_000_000, 5_000),
    ] {
        let mut sim = SimCluster::new(cfg);
        assert!(sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto).is_ok());
    }
}
