//! Sim/real byte parity: the invariant the physical-plan IR enforces.
//!
//! Both executors consume the same `JobPlan` for a given (problem, method,
//! cluster config): the simulator reports the plan's routed communication,
//! and the real executor charges its shuffle ledger from the very same
//! routed moves. Per-phase shuffle, cross-node, and broadcast bytes must
//! therefore be **bit-identical** between the two backends — not merely
//! close — for every method, replication regime, and GPU setting.

use distme::prelude::*;
use distme_core::real_exec::RealExecOptions;
use distme_gpu::GpuConfig;

const BS: u64 = 16;

fn operands(ib: u64, kb: u64, jb: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix) {
    let am = MatrixMeta::sparse(ib * BS, kb * BS, sparsity).with_block_size(BS);
    let bm = MatrixMeta::sparse(kb * BS, jb * BS, sparsity).with_block_size(BS);
    let a = MatrixGenerator::with_seed(101).generate(&am).unwrap();
    let b = MatrixGenerator::with_seed(202).generate(&bm).unwrap();
    (a, b)
}

/// Runs one (shape, method) case on both backends and asserts per-phase
/// byte equality. `gpu` switches the sim cluster to the paper's GPU model
/// and the real executor to the Algorithm 1 subcuboid schedule — neither
/// may change a single communicated byte.
fn assert_parity(a: &BlockMatrix, b: &BlockMatrix, method: MulMethod, gpu: bool, label: &str) {
    let mut cfg = ClusterConfig::laptop();
    if gpu {
        cfg.gpu = Some(GpuConfig::gtx_1080_ti());
    }

    let problem = MatmulProblem::new(*a.meta(), *b.meta()).expect("consistent operands");
    let mut sim = SimCluster::new(cfg);
    let sim_stats = sim_exec::simulate(&mut sim, &problem, method)
        .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));

    // The real cluster never has a simulated GPU device; Algorithm 1's
    // schedule is selected via the θg option instead.
    let real_cluster = LocalCluster::new(ClusterConfig::laptop());
    let opts = RealExecOptions {
        gpu_task_mem_bytes: gpu.then_some(1 << 20),
        ..Default::default()
    };
    let (_, real_stats) = real_exec::multiply_with(&real_cluster, a, b, method, opts)
        .unwrap_or_else(|e| panic!("{label}: real failed: {e}"));

    let ledger = real_cluster.ledger();
    for phase in Phase::ALL {
        let s = sim_stats.phase(phase);
        assert_eq!(
            s.shuffle_bytes,
            ledger.shuffle_bytes(phase),
            "{label}: shuffle bytes diverge in {}",
            phase.label()
        );
        assert_eq!(
            s.cross_node_bytes,
            ledger.cross_node_bytes(phase),
            "{label}: cross-node bytes diverge in {}",
            phase.label()
        );
        assert_eq!(
            s.broadcast_bytes,
            ledger.broadcast_bytes(phase),
            "{label}: broadcast bytes diverge in {}",
            phase.label()
        );
        // The real stats are read off the ledger — they must agree too.
        let r = real_stats.phase(phase);
        assert_eq!(s.shuffle_bytes, r.shuffle_bytes, "{label}: stats shuffle");
        assert_eq!(
            s.broadcast_bytes, r.broadcast_bytes,
            "{label}: stats broadcast"
        );
    }
}

fn methods() -> Vec<(MulMethod, &'static str)> {
    vec![
        (MulMethod::Bmm, "BMM"),   // broadcast, R = 1
        (MulMethod::Cpmm, "CPMM"), // R = K > 1
        (MulMethod::Rmm, "RMM"),   // voxel hash, R = K
        (MulMethod::Cuboid(CuboidSpec::new(2, 2, 1)), "Cuboid R=1"),
        (MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)), "Cuboid R>1"),
        (MulMethod::CuboidAuto, "CuboidMM"),
        (MulMethod::Crmm, "CRMM"),            // pre-shuffle
        (MulMethod::SpmmShift, "SpMM-shift"), // row shards, rotating panels
    ]
}

#[test]
fn bytes_are_bit_identical_across_backends_cpu() {
    for (ib, kb, jb) in [(5, 4, 3), (2, 6, 2), (4, 1, 4)] {
        let (a, b) = operands(ib, kb, jb, 1.0);
        for (method, name) in methods() {
            assert_parity(&a, &b, method, false, &format!("{ib}x{kb}x{jb} {name} cpu"));
        }
    }
}

#[test]
fn bytes_are_bit_identical_across_backends_gpu() {
    let (a, b) = operands(5, 4, 3, 1.0);
    for (method, name) in methods() {
        assert_parity(&a, &b, method, true, &format!("5x4x3 {name} gpu"));
    }
}

#[test]
fn bytes_are_bit_identical_for_sparse_operands() {
    let (a, b) = operands(5, 4, 3, 0.08);
    for (method, name) in [
        (MulMethod::Cpmm, "CPMM"),
        (MulMethod::Rmm, "RMM"),
        (MulMethod::CuboidAuto, "CuboidMM"),
    ] {
        assert_parity(&a, &b, method, false, &format!("sparse {name}"));
    }
}

#[test]
fn pipelined_matches_barrier_parity() {
    // The streaming executor meets the parity invariant from three sides:
    // its result bytes are bit-identical to the barrier path's, its ledger
    // is charged the exact model bytes (the routing view is shared, only
    // delivery *timing* changes), and the pipelined overlap model of the
    // simulator reports the same bytes again. Physical payload bytes are
    // deliberately NOT compared: the pull path skips blocks another task's
    // push already landed, so payload is timing-dependent under streaming.
    let (a, b) = operands(5, 4, 3, 1.0);
    let problem = MatmulProblem::new(*a.meta(), *b.meta()).expect("consistent operands");
    for (method, name) in methods() {
        let barrier_cluster = LocalCluster::new(ClusterConfig::laptop());
        let (c_barrier, s_barrier) = real_exec::multiply(&barrier_cluster, &a, &b, method)
            .unwrap_or_else(|e| panic!("{name} barrier: {e}"));

        let streamed_cluster = LocalCluster::new(ClusterConfig::laptop());
        let opts = RealExecOptions {
            pipelined: true,
            ..Default::default()
        };
        let (c_streamed, s_streamed) =
            real_exec::multiply_with(&streamed_cluster, &a, &b, method, opts)
                .unwrap_or_else(|e| panic!("{name} pipelined: {e}"));

        assert_eq!(
            c_streamed.max_abs_diff(&c_barrier).unwrap(),
            0.0,
            "{name}: streamed result must be bit-identical"
        );
        let mut sim = SimCluster::new(ClusterConfig::laptop());
        let sim_stats = sim_exec::simulate_pipelined(&mut sim, &problem, method)
            .unwrap_or_else(|e| panic!("{name} sim: {e}"));
        for phase in Phase::ALL {
            assert_eq!(
                streamed_cluster.ledger().shuffle_bytes(phase),
                barrier_cluster.ledger().shuffle_bytes(phase),
                "{name}: ledger shuffle bytes diverge in {}",
                phase.label()
            );
            assert_eq!(
                streamed_cluster.ledger().cross_node_bytes(phase),
                barrier_cluster.ledger().cross_node_bytes(phase),
                "{name}: ledger cross-node bytes diverge in {}",
                phase.label()
            );
            assert_eq!(
                streamed_cluster.ledger().broadcast_bytes(phase),
                barrier_cluster.ledger().broadcast_bytes(phase),
                "{name}: ledger broadcast bytes diverge in {}",
                phase.label()
            );
            assert_eq!(
                s_streamed.phase(phase).shuffle_bytes,
                s_barrier.phase(phase).shuffle_bytes,
                "{name}: stats shuffle bytes diverge in {}",
                phase.label()
            );
            assert_eq!(
                sim_stats.phase(phase).shuffle_bytes,
                s_streamed.phase(phase).shuffle_bytes,
                "{name}: pipelined sim bytes diverge in {}",
                phase.label()
            );
        }
        let ratio = s_streamed
            .overlap_ratio
            .unwrap_or_else(|| panic!("{name}: pipelined jobs report overlap"));
        assert!((0.0..=1.0).contains(&ratio), "{name}: ratio {ratio}");
        assert!(
            s_streamed.prefetch_hits + s_streamed.prefetch_stalls > 0,
            "{name}: every panel is a hit or a stall"
        );
        assert_eq!(s_barrier.overlap_ratio, None, "{name}: barrier runs don't");
    }
}

#[test]
fn fault_recovery_preserves_parity() {
    // The recovery invariant meets the parity invariant: a run that drops,
    // corrupts, and crashes its way to completion must charge the exact
    // model bytes of the fault-free run (the ledger is driven by the
    // plan's routing, not by physical deliveries) and the exact
    // first-transmission payload. Recovery traffic is visible only in the
    // dedicated retransmission counters.
    use distme::cluster::FaultSpec;
    let (a, b) = operands(5, 4, 3, 1.0);
    for (method, name) in [
        (MulMethod::Cpmm, "CPMM"),
        (MulMethod::CuboidAuto, "CuboidMM"),
    ] {
        let clean_cluster = LocalCluster::new(ClusterConfig::laptop());
        let (c_clean, s_clean) = real_exec::multiply(&clean_cluster, &a, &b, method)
            .unwrap_or_else(|e| panic!("{name} clean: {e}"));

        let faulted_cluster = LocalCluster::new(ClusterConfig::laptop());
        let plan = faulted_cluster.inject_faults(FaultSpec {
            seed: 14,
            drop_rate: 0.05,
            corrupt_rate: 0.03,
            crash_rate: 0.05,
            blackouts: Vec::new(),
        });
        let (c_faulted, s_faulted) = real_exec::multiply(&faulted_cluster, &a, &b, method)
            .unwrap_or_else(|e| panic!("{name} faulted: {e}"));
        assert!(
            plan.dropped() + plan.corrupted() + plan.crashed() > 0,
            "{name}: the schedule must inject something"
        );

        assert_eq!(
            c_faulted.max_abs_diff(&c_clean).unwrap(),
            0.0,
            "{name}: recovered result diverged"
        );
        for phase in Phase::ALL {
            assert_eq!(
                faulted_cluster.ledger().shuffle_bytes(phase),
                clean_cluster.ledger().shuffle_bytes(phase),
                "{name}: model shuffle bytes diverged in {}",
                phase.label()
            );
            assert_eq!(
                faulted_cluster.ledger().cross_node_bytes(phase),
                clean_cluster.ledger().cross_node_bytes(phase),
                "{name}: model cross-node bytes diverged in {}",
                phase.label()
            );
        }
        assert_eq!(
            s_faulted.transport_payload_bytes, s_clean.transport_payload_bytes,
            "{name}: first-transmission payload diverged"
        );
        assert_eq!(s_clean.retries, 0, "{name}");
        assert_eq!(s_clean.redelivered_moves, 0, "{name}");
        assert_eq!(s_clean.retransmitted_payload_bytes, 0, "{name}");
        assert!(
            s_faulted.retransmitted_payload_bytes > 0,
            "{name}: recovery traffic must be visible in its own counter"
        );
    }
}

#[test]
fn resized_grids_rederive_parity() {
    // Elastic membership meets the parity invariant: after a mid-session
    // resize both backends re-derive their plans against the new node
    // count, and the re-derived routing must stay bit-identical. Job bytes
    // are compared as ledger *deltas* so the resize's own physical
    // `Phase::Rebalance` migration (real-only) stays out of the job-phase
    // comparison — and is then checked to have landed in the cumulative
    // ledger under its own phase.
    let (a, b) = operands(5, 4, 3, 1.0);
    let problem = MatmulProblem::new(*a.meta(), *b.meta()).expect("consistent operands");
    let mut sim = SimCluster::new(ClusterConfig::laptop());
    let mut real = LocalCluster::new(ClusterConfig::laptop());
    for (nodes, stage) in [(4, "before resize"), (9, "after grow"), (3, "after shrink")] {
        if sim.config().nodes != nodes {
            sim.scale_to(nodes);
            real.scale_to(nodes).expect("resize");
            assert_eq!(sim.epoch(), real.epoch(), "{stage}: epochs diverged");
        }
        for (method, name) in [
            (MulMethod::Cpmm, "CPMM"),
            (MulMethod::CuboidAuto, "CuboidMM"),
        ] {
            let label = format!("{stage} ({nodes} nodes) {name}");
            let sim_stats = sim_exec::simulate(&mut sim, &problem, method)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            let mark = real.ledger().snapshot();
            real_exec::multiply(&real, &a, &b, method)
                .unwrap_or_else(|e| panic!("{label}: real failed: {e}"));
            let delta = real.ledger().since(&mark);
            for phase in Phase::ALL {
                let s = sim_stats.phase(phase);
                assert_eq!(
                    s.shuffle_bytes,
                    delta.shuffle_bytes(phase),
                    "{label}: shuffle bytes diverge in {}",
                    phase.label()
                );
                assert_eq!(
                    s.cross_node_bytes,
                    delta.cross_node_bytes(phase),
                    "{label}: cross-node bytes diverge in {}",
                    phase.label()
                );
                assert_eq!(
                    s.broadcast_bytes,
                    delta.broadcast_bytes(phase),
                    "{label}: broadcast bytes diverge in {}",
                    phase.label()
                );
            }
        }
    }
    assert!(
        real.ledger().shuffle_bytes(Phase::Rebalance) > 0,
        "migrations must be charged under their own phase"
    );
}

#[test]
fn ragged_grids_keep_parity() {
    // Partition counts that do not divide the block grid: uneven cuboid
    // bands exercise the per-block (not per-average) routing shares.
    let (a, b) = operands(5, 3, 5, 1.0);
    for spec in [
        CuboidSpec::new(4, 1, 1),
        CuboidSpec::new(3, 2, 2),
        CuboidSpec::new(1, 1, 3),
    ] {
        assert_parity(
            &a,
            &b,
            MulMethod::Cuboid(spec),
            false,
            &format!("ragged {spec:?}"),
        );
    }
}

/// SDDMM meets the parity invariant: the masked problem routes through
/// the same repartition/broadcast machinery, so sim and real per-phase
/// bytes must be bit-identical on every grid — including ragged ones —
/// and because the sampled schedule shards by mask rows (`(I, 1, 1)`,
/// node-count independent), the gathered values themselves must be
/// bit-identical across cluster sizes.
#[test]
fn sddmm_keeps_parity_across_ragged_grids() {
    // Exact bit pattern of a sampled result: ids plus every stored f64.
    let result_bits = |m: &BlockMatrix| {
        let mut out = Vec::new();
        for (id, blk) in m.blocks() {
            out.push(u64::from(id.row));
            out.push(u64::from(id.col));
            out.extend(blk.to_dense().data().iter().map(|x| x.to_bits()));
        }
        out
    };
    for (ib, kb, jb) in [(5, 4, 3), (2, 6, 2), (5, 3, 5)] {
        let am = MatrixMeta::dense(ib * BS, kb * BS).with_block_size(BS);
        let bm = MatrixMeta::dense(kb * BS, jb * BS).with_block_size(BS);
        let mm = MatrixMeta::sparse(ib * BS, jb * BS, 0.12).with_block_size(BS);
        let a = MatrixGenerator::with_seed(101).generate(&am).unwrap();
        let b = MatrixGenerator::with_seed(202).generate(&bm).unwrap();
        let mask = MatrixGenerator::with_seed(303).generate(&mm).unwrap();
        let problem =
            MatmulProblem::sddmm(*a.meta(), *b.meta(), *mask.meta()).expect("consistent mask");

        let mut grids = Vec::new();
        for nodes in [4, 9] {
            let label = format!("{ib}x{kb}x{jb} sddmm on {nodes} nodes");
            let cfg = ClusterConfig {
                nodes,
                ..ClusterConfig::laptop()
            };
            let mut sim = SimCluster::new(cfg);
            let sim_stats = sim_exec::simulate(&mut sim, &problem, MulMethod::Sddmm)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            let real_cluster = LocalCluster::new(cfg);
            let (c, _) = real_exec::sddmm(&real_cluster, &a, &b, &mask)
                .unwrap_or_else(|e| panic!("{label}: real failed: {e}"));
            for phase in Phase::ALL {
                let s = sim_stats.phase(phase);
                assert_eq!(
                    s.shuffle_bytes,
                    real_cluster.ledger().shuffle_bytes(phase),
                    "{label}: shuffle bytes diverge in {}",
                    phase.label()
                );
                assert_eq!(
                    s.broadcast_bytes,
                    real_cluster.ledger().broadcast_bytes(phase),
                    "{label}: broadcast bytes diverge in {}",
                    phase.label()
                );
            }
            grids.push(result_bits(&c));
        }
        assert_eq!(
            grids[0], grids[1],
            "{ib}x{kb}x{jb}: sampled values must not depend on the node count"
        );
    }
}

/// Coded replication must be invisible when off — the default — and
/// byte-transparent when on: for every method, a fault-free run under
/// `ReplicationPolicy::Xor` produces the same result bits, the same
/// per-phase ledger model bytes, the same physical payload, and the same
/// data-key placements as the `Off` run. Parity only *adds* keys (under
/// its own `StoreKind`); it never perturbs the data path.
#[test]
fn replication_off_is_the_default_and_xor_is_byte_transparent() {
    assert_eq!(ClusterConfig::laptop().replication, ReplicationPolicy::Off);
    assert_eq!(
        ClusterConfig::paper_cluster().replication,
        ReplicationPolicy::Off
    );

    let (a, b) = operands(5, 4, 3, 1.0);
    // Matrix uids come off a process-global counter, so the two runs name
    // the *same* result matrix differently: compare placements with uids
    // normalized to their order of appearance.
    let data_placements = |cluster: &LocalCluster| {
        let mut uid_rank = std::collections::BTreeMap::new();
        cluster
            .stores()
            .resident_keys()
            .into_iter()
            .filter(|(k, _)| !k.is_parity())
            .map(|(k, holders)| {
                let next = uid_rank.len();
                let rank = *uid_rank.entry(k.matrix).or_insert(next);
                (rank, k.id, k.copy, holders)
            })
            .collect::<Vec<_>>()
    };
    for (method, name) in methods() {
        let off = LocalCluster::new(ClusterConfig::laptop());
        let (c_off, s_off) =
            real_exec::multiply(&off, &a, &b, method).unwrap_or_else(|e| panic!("{name} off: {e}"));
        let xor =
            LocalCluster::new(ClusterConfig::laptop().with_replication(ReplicationPolicy::Xor));
        let (c_xor, s_xor) =
            real_exec::multiply(&xor, &a, &b, method).unwrap_or_else(|e| panic!("{name} xor: {e}"));

        assert_eq!(
            c_off.max_abs_diff(&c_xor).unwrap(),
            0.0,
            "{name}: result bits must not depend on the replication policy"
        );
        for phase in Phase::ALL {
            assert_eq!(
                off.ledger().shuffle_bytes(phase),
                xor.ledger().shuffle_bytes(phase),
                "{name}: ledger bytes diverge in {}",
                phase.label()
            );
            assert_eq!(
                off.ledger().broadcast_bytes(phase),
                xor.ledger().broadcast_bytes(phase),
                "{name}: broadcast bytes diverge in {}",
                phase.label()
            );
        }
        assert_eq!(
            s_off.transport_payload_bytes, s_xor.transport_payload_bytes,
            "{name}: parity installs must not ride the transport"
        );
        assert_eq!(
            data_placements(&off),
            data_placements(&xor),
            "{name}: data placement hashes must be untouched by parity"
        );
        assert!(
            off.stores().resident_keys().keys().all(|k| !k.is_parity()),
            "{name}: an Off cluster must hold no parity keys"
        );
        assert_eq!(s_off.parity_blocks_encoded, 0);
        assert!(s_xor.parity_blocks_encoded > 0, "{name}: parity must exist");
        // Fault-free: neither recovery tier has anything to do.
        assert_eq!(s_off.reconstructed_blocks, 0);
        assert_eq!(s_xor.reconstructed_blocks, 0);
        assert_eq!(s_xor.retransmitted_payload_bytes, 0);
    }
}
