//! Sim/real byte parity: the invariant the physical-plan IR enforces.
//!
//! Both executors consume the same `JobPlan` for a given (problem, method,
//! cluster config): the simulator reports the plan's routed communication,
//! and the real executor charges its shuffle ledger from the very same
//! routed moves. Per-phase shuffle, cross-node, and broadcast bytes must
//! therefore be **bit-identical** between the two backends — not merely
//! close — for every method, replication regime, and GPU setting.

use distme::prelude::*;
use distme_core::real_exec::RealExecOptions;
use distme_gpu::GpuConfig;

const BS: u64 = 16;

fn operands(ib: u64, kb: u64, jb: u64, sparsity: f64) -> (BlockMatrix, BlockMatrix) {
    let am = MatrixMeta::sparse(ib * BS, kb * BS, sparsity).with_block_size(BS);
    let bm = MatrixMeta::sparse(kb * BS, jb * BS, sparsity).with_block_size(BS);
    let a = MatrixGenerator::with_seed(101).generate(&am).unwrap();
    let b = MatrixGenerator::with_seed(202).generate(&bm).unwrap();
    (a, b)
}

/// Runs one (shape, method) case on both backends and asserts per-phase
/// byte equality. `gpu` switches the sim cluster to the paper's GPU model
/// and the real executor to the Algorithm 1 subcuboid schedule — neither
/// may change a single communicated byte.
fn assert_parity(a: &BlockMatrix, b: &BlockMatrix, method: MulMethod, gpu: bool, label: &str) {
    let mut cfg = ClusterConfig::laptop();
    if gpu {
        cfg.gpu = Some(GpuConfig::gtx_1080_ti());
    }

    let problem = MatmulProblem::new(*a.meta(), *b.meta()).expect("consistent operands");
    let mut sim = SimCluster::new(cfg);
    let sim_stats = sim_exec::simulate(&mut sim, &problem, method)
        .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));

    // The real cluster never has a simulated GPU device; Algorithm 1's
    // schedule is selected via the θg option instead.
    let real_cluster = LocalCluster::new(ClusterConfig::laptop());
    let opts = RealExecOptions {
        gpu_task_mem_bytes: gpu.then_some(1 << 20),
    };
    let (_, real_stats) = real_exec::multiply_with(&real_cluster, a, b, method, opts)
        .unwrap_or_else(|e| panic!("{label}: real failed: {e}"));

    let ledger = real_cluster.ledger();
    for phase in Phase::ALL {
        let s = sim_stats.phase(phase);
        assert_eq!(
            s.shuffle_bytes,
            ledger.shuffle_bytes(phase),
            "{label}: shuffle bytes diverge in {}",
            phase.label()
        );
        assert_eq!(
            s.cross_node_bytes,
            ledger.cross_node_bytes(phase),
            "{label}: cross-node bytes diverge in {}",
            phase.label()
        );
        assert_eq!(
            s.broadcast_bytes,
            ledger.broadcast_bytes(phase),
            "{label}: broadcast bytes diverge in {}",
            phase.label()
        );
        // The real stats are read off the ledger — they must agree too.
        let r = real_stats.phase(phase);
        assert_eq!(s.shuffle_bytes, r.shuffle_bytes, "{label}: stats shuffle");
        assert_eq!(
            s.broadcast_bytes, r.broadcast_bytes,
            "{label}: stats broadcast"
        );
    }
}

fn methods() -> Vec<(MulMethod, &'static str)> {
    vec![
        (MulMethod::Bmm, "BMM"),   // broadcast, R = 1
        (MulMethod::Cpmm, "CPMM"), // R = K > 1
        (MulMethod::Rmm, "RMM"),   // voxel hash, R = K
        (MulMethod::Cuboid(CuboidSpec::new(2, 2, 1)), "Cuboid R=1"),
        (MulMethod::Cuboid(CuboidSpec::new(2, 2, 2)), "Cuboid R>1"),
        (MulMethod::CuboidAuto, "CuboidMM"),
        (MulMethod::Crmm, "CRMM"), // pre-shuffle
    ]
}

#[test]
fn bytes_are_bit_identical_across_backends_cpu() {
    for (ib, kb, jb) in [(5, 4, 3), (2, 6, 2), (4, 1, 4)] {
        let (a, b) = operands(ib, kb, jb, 1.0);
        for (method, name) in methods() {
            assert_parity(&a, &b, method, false, &format!("{ib}x{kb}x{jb} {name} cpu"));
        }
    }
}

#[test]
fn bytes_are_bit_identical_across_backends_gpu() {
    let (a, b) = operands(5, 4, 3, 1.0);
    for (method, name) in methods() {
        assert_parity(&a, &b, method, true, &format!("5x4x3 {name} gpu"));
    }
}

#[test]
fn bytes_are_bit_identical_for_sparse_operands() {
    let (a, b) = operands(5, 4, 3, 0.08);
    for (method, name) in [
        (MulMethod::Cpmm, "CPMM"),
        (MulMethod::Rmm, "RMM"),
        (MulMethod::CuboidAuto, "CuboidMM"),
    ] {
        assert_parity(&a, &b, method, false, &format!("sparse {name}"));
    }
}

#[test]
fn ragged_grids_keep_parity() {
    // Partition counts that do not divide the block grid: uneven cuboid
    // bands exercise the per-block (not per-average) routing shares.
    let (a, b) = operands(5, 3, 5, 1.0);
    for spec in [
        CuboidSpec::new(4, 1, 1),
        CuboidSpec::new(3, 2, 2),
        CuboidSpec::new(1, 1, 3),
    ] {
        assert_parity(
            &a,
            &b,
            MulMethod::Cuboid(spec),
            false,
            &format!("ragged {spec:?}"),
        );
    }
}
