//! Cross-crate correctness: every distributed method must compute exactly
//! the product the single-node reference computes, for arbitrary shapes,
//! block sizes, sparsities, and cuboid parameters — the invariant that
//! makes the simulated results meaningful.

use distme::prelude::*;
use proptest::prelude::*;

fn generate(rows: u64, cols: u64, bs: u64, sparsity: f64, seed: u64) -> BlockMatrix {
    let meta = MatrixMeta::sparse(rows, cols, sparsity).with_block_size(bs);
    MatrixGenerator::with_seed(seed)
        .generate(&meta)
        .expect("generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// For any problem and any *explicit* (P, Q, R), CuboidMM equals the
    /// reference product (§3.1's central soundness requirement).
    #[test]
    fn cuboid_partitioning_never_changes_the_product(
        i in 1u64..6,
        j in 1u64..6,
        k in 1u64..6,
        p in 1u32..4,
        q in 1u32..4,
        r in 1u32..4,
        sparsity in prop_oneof![Just(1.0f64), 0.05f64..0.9],
        seed in 0u64..1000,
    ) {
        let bs = 16u64;
        let a = generate(i * bs, k * bs, bs, sparsity, seed);
        let b = generate(k * bs, j * bs, bs, sparsity, seed ^ 0xFFFF);
        let reference = a.multiply(&b).expect("reference");
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        let spec = CuboidSpec::new(p.min(i as u32), q.min(j as u32), r.min(k as u32));
        let (c, _) = real_exec::multiply(&cluster, &a, &b, MulMethod::Cuboid(spec))
            .expect("multiply succeeds");
        let diff = c.max_abs_diff(&reference).expect("same shape");
        prop_assert!(diff < 1e-9, "spec {spec}: diff {diff}");
    }

    /// BMM, CPMM, RMM, CRMM, and the auto-optimized CuboidMM all agree.
    #[test]
    fn all_methods_agree(
        i in 1u64..5,
        j in 1u64..5,
        k in 1u64..5,
        sparsity in prop_oneof![Just(1.0f64), 0.1f64..0.8],
        seed in 0u64..1000,
    ) {
        let bs = 16u64;
        let a = generate(i * bs + 3, k * bs + 5, bs, sparsity, seed);
        let b = generate(k * bs + 5, j * bs + 1, bs, sparsity, seed ^ 0xABC);
        let reference = a.multiply(&b).expect("reference");
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        for method in [
            MulMethod::Bmm,
            MulMethod::Cpmm,
            MulMethod::Rmm,
            MulMethod::Crmm,
            MulMethod::CuboidAuto,
        ] {
            let (c, _) = real_exec::multiply(&cluster, &a, &b, method)
                .expect("multiply succeeds");
            let diff = c.max_abs_diff(&reference).expect("same shape");
            prop_assert!(diff < 1e-9, "{}: diff {diff}", method.name());
        }
    }

    /// Algorithm 1's GPU schedule is θg-invariant: any feasible device
    /// budget yields the same product.
    #[test]
    fn gpu_schedule_is_theta_g_invariant(
        budget_blocks in 4u64..40,
        seed in 0u64..1000,
    ) {
        let bs = 16u64;
        let a = generate(4 * bs, 6 * bs, bs, 1.0, seed);
        let b = generate(6 * bs, 3 * bs, bs, 1.0, seed ^ 0x5A5A);
        let reference = a.multiply(&b).expect("reference");
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        let theta_g = budget_blocks * 8 * bs * bs;
        let opts = distme::core::real_exec::RealExecOptions {
            gpu_task_mem_bytes: Some(theta_g),
            ..Default::default()
        };
        let (c, _) = distme::core::real_exec::multiply_with(
            &cluster, &a, &b, MulMethod::CuboidAuto, opts,
        ).expect("multiply succeeds");
        let diff = c.max_abs_diff(&reference).expect("same shape");
        prop_assert!(diff < 1e-9, "θg = {theta_g}: diff {diff}");
    }

    /// Engine laws: (A·B)ᵀ = Bᵀ·Aᵀ and A ∗ B / B = A on B's support,
    /// through the distributed engine.
    #[test]
    fn engine_algebraic_laws(
        n in 2u64..5,
        seed in 0u64..1000,
    ) {
        let bs = 16u64;
        let a = generate(n * bs, n * bs, bs, 1.0, seed);
        let b = generate(n * bs, n * bs, bs, 1.0, seed ^ 0x77);
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let ab = s.matmul(&a, &b).expect("A x B");
        let ab_t = s.transpose(&ab).expect("(AB)t");
        let bt_at = {
            let bt = s.transpose(&b).expect("Bt");
            let at = s.transpose(&a).expect("At");
            s.matmul(&bt, &at).expect("Bt x At")
        };
        prop_assert!(ab_t.max_abs_diff(&bt_at).expect("same shape") < 1e-9);

        let prod = s.elementwise(&a, EwOp::Mul, &b).expect("hadamard");
        let back = s.elementwise(&prod, EwOp::Div, &b).expect("divide");
        // a*b/b == a wherever b != 0 (sparse-safe division yields 0 there).
        for i in 0..n * bs {
            for j in 0..n * bs {
                let expect = if b.get_element(i, j) == 0.0 { 0.0 } else { a.get_element(i, j) };
                prop_assert!((back.get_element(i, j) - expect).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn identity_multiplication_through_every_method() {
    let bs = 16u64;
    let n = 4 * bs;
    let a = generate(n, n, bs, 0.5, 42);
    // Block-diagonal identity.
    let mut id = BlockMatrix::new(MatrixMeta::dense(n, n).with_block_size(bs));
    for bi in 0..(n / bs) as u32 {
        id.put(bi, bi, Block::Dense(DenseBlock::identity(bs as usize)))
            .expect("in grid");
    }
    let cluster = LocalCluster::new(ClusterConfig::laptop());
    for method in [
        MulMethod::Bmm,
        MulMethod::Cpmm,
        MulMethod::Rmm,
        MulMethod::CuboidAuto,
    ] {
        let (c, _) = real_exec::multiply(&cluster, &a, &id, method).expect("multiply");
        assert!(
            c.max_abs_diff(&a).expect("same shape") < 1e-12,
            "{} broke identity",
            method.name()
        );
    }
}
