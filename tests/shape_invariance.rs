//! Shape invariance: the headline *orderings* of the evaluation must not
//! depend on the exact calibration constants. DESIGN.md promises that
//! perturbing the hardware model rescales absolute seconds but preserves
//! who wins — this test perturbs every major rate by ±50% and re-checks
//! the core claims.

use distme::prelude::*;

/// Perturbs the paper cluster's rates by the given factor.
fn perturbed(factor: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster_gpu();
    cfg.net_bytes_per_sec *= factor;
    cfg.disk_bytes_per_sec *= factor;
    cfg.node_cpu_flops_per_sec *= factor;
    cfg.serde_bytes_per_sec *= factor;
    let mut gpu = cfg.gpu.expect("gpu config");
    gpu.kernel_flops_per_sec *= factor;
    gpu.h2d_bytes_per_sec *= factor;
    gpu.d2h_bytes_per_sec *= factor;
    cfg.gpu = Some(gpu);
    // Keep failure thresholds fixed; relax the timeout so slow variants
    // still produce a time to compare.
    cfg.with_timeout(f64::MAX)
}

fn elapsed(cfg: ClusterConfig, n: u64, m: MulMethod) -> Option<f64> {
    let p = MatmulProblem::new(MatrixMeta::sparse(n, n, 0.5), MatrixMeta::sparse(n, n, 0.5))
        .expect("consistent");
    let mut sim = SimCluster::new(cfg);
    sim_exec::simulate(&mut sim, &p, m)
        .ok()
        .map(|s| s.elapsed_secs)
}

#[test]
fn cuboidmm_wins_under_any_calibration() {
    for factor in [0.5, 1.0, 2.0] {
        let cfg = perturbed(factor);
        let cuboid = elapsed(cfg, 70_000, MulMethod::CuboidAuto).expect("runs");
        for m in [MulMethod::Cpmm, MulMethod::Rmm] {
            let other = elapsed(cfg, 70_000, m).expect("runs");
            assert!(
                cuboid < other,
                "factor {factor}: CuboidMM {cuboid:.0}s vs {} {other:.0}s",
                m.name()
            );
        }
    }
}

#[test]
fn rmm_is_always_slowest_of_the_shuffling_methods() {
    for factor in [0.5, 1.0, 2.0] {
        let cfg = perturbed(factor);
        let rmm = elapsed(cfg, 70_000, MulMethod::Rmm).expect("runs");
        let cpmm = elapsed(cfg, 70_000, MulMethod::Cpmm).expect("runs");
        assert!(
            rmm > cpmm,
            "factor {factor}: RMM {rmm:.0}s vs CPMM {cpmm:.0}s"
        );
    }
}

#[test]
fn communication_volumes_are_calibration_independent() {
    // Byte counts come from the plan, not the rates: identical across
    // calibrations.
    let volumes = |factor: f64| {
        let p = MatmulProblem::dense(50_000, 50_000, 50_000);
        let mut sim = SimCluster::new(perturbed(factor));
        let stats = sim_exec::simulate(&mut sim, &p, MulMethod::CuboidAuto).expect("runs");
        (
            stats.total_shuffle_bytes(),
            stats.total_broadcast_bytes(),
            stats.intermediate_bytes,
        )
    };
    assert_eq!(volumes(0.5), volumes(2.0));
}

#[test]
fn failure_outcomes_are_rate_independent() {
    // O.O.M. depends on θt and sizes only — any rate calibration gives the
    // same annotation.
    for factor in [0.5, 2.0] {
        let cfg = perturbed(factor);
        let p = MatmulProblem::dense(100_000, 100_000, 100_000);
        let mut sim = SimCluster::new(cfg);
        let err = sim_exec::simulate(&mut sim, &p, MulMethod::Bmm).unwrap_err();
        assert_eq!(err.annotation(), "O.O.M.");
    }
}

#[test]
fn gpu_still_beats_cpu_after_perturbation() {
    for factor in [0.5, 2.0] {
        let mut cpu_cfg = ClusterConfig::paper_cluster().with_timeout(f64::MAX);
        cpu_cfg.node_cpu_flops_per_sec *= factor;
        let gpu_cfg = perturbed(factor);
        let p = MatmulProblem::dense(40_000, 40_000, 40_000);
        let mut cpu_sim = SimCluster::new(cpu_cfg);
        let cpu = sim_exec::simulate(&mut cpu_sim, &p, MulMethod::CuboidAuto)
            .expect("runs")
            .elapsed_secs;
        let mut gpu_sim = SimCluster::new(gpu_cfg);
        let gpu = sim_exec::simulate(&mut gpu_sim, &p, MulMethod::CuboidAuto)
            .expect("runs")
            .elapsed_secs;
        assert!(gpu < cpu, "factor {factor}: GPU {gpu:.0}s vs CPU {cpu:.0}s");
    }
}
