//! GNMF end-to-end: the real factorization's numeric guarantees and the
//! engine's behaviour across profiles and execution modes.

use distme::prelude::*;
use proptest::prelude::*;

fn rating_matrix(users: u64, items: u64, density: f64, seed: u64) -> BlockMatrix {
    let meta = MatrixMeta::sparse(users, items, density).with_block_size(16);
    MatrixGenerator::with_seed(seed)
        .value_range(1.0, 5.0)
        .generate(&meta)
        .expect("generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The multiplicative-update objective never increases, for arbitrary
    /// rating matrices, ranks, and seeds (Lee & Seung's guarantee, which
    /// the engine's distributed operators must preserve).
    #[test]
    fn objective_monotone_for_arbitrary_inputs(
        users in 2u64..5,
        items in 2u64..5,
        density in 0.1f64..0.6,
        rank in 4u64..16,
        seed in 0u64..500,
    ) {
        let v = rating_matrix(users * 16, items * 16, density, seed);
        let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
        let res = gnmf::run_real(
            &mut s,
            &v,
            &GnmfConfig { factor_dim: rank, iterations: 5 },
            seed,
        ).expect("gnmf runs");
        for w in res.objective.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-9), "objective rose: {:?}", res.objective);
        }
    }

    /// Every system profile computes the same factorization (they differ
    /// only in planning, never in results).
    #[test]
    fn profiles_agree_on_the_factorization(seed in 0u64..200) {
        let v = rating_matrix(64, 48, 0.3, seed);
        let cfg = GnmfConfig { factor_dim: 8, iterations: 3 };
        let mut reference: Option<Vec<f64>> = None;
        for profile in SystemProfile::ALL {
            let mut s = RealSession::new(ClusterConfig::laptop(), profile);
            let res = gnmf::run_real(&mut s, &v, &cfg, seed).expect("gnmf runs");
            match &reference {
                None => reference = Some(res.objective.clone()),
                Some(expect) => {
                    for (a, b) in expect.iter().zip(res.objective.iter()) {
                        prop_assert!(
                            (a - b).abs() < 1e-6 * a.max(1.0),
                            "{} diverged: {a} vs {b}",
                            profile.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn simulated_gnmf_scales_with_dataset_size() {
    // Larger Table 3 datasets take longer per iteration, in order.
    let mut totals = Vec::new();
    for dataset in &RatingDataset::ALL {
        let mut cfg = ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX);
        cfg.wire_compression_ratio = 0.5;
        let report = gnmf::simulate(
            cfg,
            SystemProfile::DistMe,
            dataset,
            &GnmfConfig {
                factor_dim: 200,
                iterations: 2,
            },
        )
        .expect("runs");
        totals.push((dataset.name, report.total_secs()));
    }
    assert!(
        totals[0].1 < totals[2].1,
        "MovieLens must be faster than YahooMusic: {totals:?}"
    );
}

#[test]
fn expression_api_builds_one_gnmf_numerator() {
    // The Wᵀ V piece of the H update through the lazy expression API,
    // evaluated in both modes.
    let v = rating_matrix(64, 48, 0.3, 3);
    let w_meta = MatrixMeta::dense(64, 16).with_block_size(16);
    let w = MatrixGenerator::with_seed(9)
        .value_range(0.1, 1.0)
        .generate(&w_meta)
        .expect("gen W");

    // Real evaluation.
    let expect = w.transpose().multiply(&v).expect("reference");
    let query = Expr::value(w).t().matmul(Expr::value(v.clone()));
    let mut real = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let got = query.eval_real(&mut real).expect("evaluates");
    assert!(got.max_abs_diff(&expect).expect("same shape") < 1e-9);

    // Simulated evaluation at paper scale.
    let sim_q = Expr::virtual_input(MatrixMeta::dense(1_823_179, 200))
        .t()
        .matmul(Expr::virtual_input(RatingDataset::YAHOO_MUSIC.meta()));
    let mut sim = SimSession::new(
        ClusterConfig::paper_cluster_gpu().with_timeout(f64::MAX),
        SystemProfile::DistMe,
    );
    let out = sim_q.eval_sim(&mut sim).expect("simulates");
    assert_eq!((out.rows, out.cols), (200, 136_736));
    assert!(sim.stats().elapsed_secs > 0.0);
}

#[test]
fn gnmf_recovers_bit_identically_under_transport_faults() {
    // A whole multi-operator algorithm under a lossy transport: every
    // matmul of every iteration runs with ~1% of deliveries dropped and
    // occasional task crashes. Lineage redelivery and task retry must
    // reproduce the fault-free factors to the last bit.
    use distme::cluster::FaultSpec;
    let v = rating_matrix(64, 48, 0.3, 7);
    let cfg = GnmfConfig {
        factor_dim: 8,
        iterations: 3,
    };

    let mut clean = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let clean_res = gnmf::run_real(&mut clean, &v, &cfg, 7).expect("clean gnmf");

    let mut faulted = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let plan = faulted.inject_faults(FaultSpec {
        seed: 5,
        drop_rate: 0.01,
        corrupt_rate: 0.005,
        crash_rate: 0.01,
        blackouts: Vec::new(),
    });
    let faulted_res = gnmf::run_real(&mut faulted, &v, &cfg, 7).expect("faulted gnmf recovers");

    assert!(
        plan.dropped() > 0,
        "the schedule must drop at least one delivery"
    );
    assert!(faulted.stats().retries > 0, "tasks must have been re-run");
    assert!(faulted.stats().redelivered_moves > 0);
    assert_eq!(
        faulted_res.w.max_abs_diff(&clean_res.w).unwrap(),
        0.0,
        "W diverged under faults"
    );
    assert_eq!(
        faulted_res.h.max_abs_diff(&clean_res.h).unwrap(),
        0.0,
        "H diverged under faults"
    );
    assert_eq!(clean.stats().retries, 0);
}

#[test]
fn gnmf_handles_empty_rows_and_columns() {
    // Users with no ratings / items nobody rated must not break the
    // updates (their factor rows simply stay put or go to zero).
    let meta = MatrixMeta::sparse(48, 48, 0.0).with_block_size(16);
    let mut v = BlockMatrix::new(meta);
    // One lonely rating.
    v.put(0, 0, {
        let mut d = DenseBlock::zeros(16, 16);
        d.set(3, 5, 4.0);
        Block::Dense(d).normalize()
    })
    .expect("in grid");
    let mut s = RealSession::new(ClusterConfig::laptop(), SystemProfile::DistMe);
    let res = gnmf::run_real(
        &mut s,
        &v,
        &GnmfConfig {
            factor_dim: 4,
            iterations: 3,
        },
        1,
    )
    .expect("gnmf runs");
    assert!(res.objective.iter().all(|o| o.is_finite()));
}
