# Development entry points. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci fmt lint test parity chaos-smoke elastic-smoke coded-smoke service-smoke overlap-smoke sparse-smoke codec-smoke build bench bench-json bench-smoke

ci: fmt lint test parity chaos-smoke elastic-smoke coded-smoke service-smoke overlap-smoke sparse-smoke bench-smoke codec-smoke

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test -q --workspace

# The sim/real byte-parity contract, runnable on its own: the simulator's
# communication model must match what the real executor's ledger measures,
# bit for bit.
parity:
	$(CARGO) test -q --test plan_parity

# The recovery contract under seeded fault injection: a fixed-seed run with
# drops, corruption, and crashes must complete bit-identical to fault-free
# (plus the proptest sweep over random fault schedules).
chaos-smoke:
	$(CARGO) test -q -p distme-cluster --test chaos

# The elasticity contract: fixed-seed GNMF runs that grow (4->9) and
# shrink (9->4) mid-factorization must produce factors bit-identical to
# fixed-grid runs, with resident blocks actually migrating, plus the
# ledger-delta and membership-log invariants.
elastic-smoke:
	$(CARGO) test -q -p distme-cluster --test elastic
	$(CARGO) test -q -p distme-engine -- gnmf::tests::gnmf_grown_mid_run_matches_a_fixed_grid_bit_for_bit gnmf::tests::gnmf_shrunk_mid_run_drains_live_blocks_without_drift gnmf::tests::autoscaler_grows_the_cluster_during_gnmf

# The coded-replication contract (chaos + elastic combined): mid-GNMF loss
# of a node holding sole-copy blocks, with transport faults active, must
# complete bit-identical to fault-free under ReplicationPolicy::Xor (parity
# decode exercised, lineage fallback still counted) — and must keep failing
# with the typed NodeDecommissioned error when coding is off or the
# erasure budget is exceeded.
coded-smoke:
	$(CARGO) test -q -p distme-cluster --test coded
	$(CARGO) test -q -p distme-cluster --lib coding

# The multi-tenancy contract: concurrent jobs through the job service must
# match their solo runs bit for bit, per-tenant ledger deltas must sum to
# the cluster totals, and over-budget submissions must queue (bounding
# concurrent resident memory) rather than fail.
service-smoke:
	$(CARGO) test -q -p distme-engine --test service

# The pipelined-execution contract: the streaming executor (communication
# overlapped with compute via per-task block dependencies) must match the
# barrier executor bit for bit — result bytes and ledger model bytes — for
# every method, and must recover faults mid-stream just as exactly.
overlap-smoke:
	$(CARGO) test -q --test plan_parity pipelined_matches_barrier_parity
	$(CARGO) test -q -p distme-cluster --test chaos pipelined_streaming_recovers_drops_and_corruption_bit_identically
	$(CARGO) test -q -p distme-core pipelined

# The sparse-method contract: SDDMM/SpMM local kernels bit-match their
# dense references, both methods hold sim/real byte parity (SDDMM also
# across node counts), ALS converges with factors bit-identical across
# elastic resizes and under the multi-tenant service, and blackout-window
# losses of coded operands decode from parity.
sparse-smoke:
	$(CARGO) test -q -p distme-matrix sddmm
	$(CARGO) test -q --test plan_parity sddmm_keeps_parity_across_ragged_grids
	$(CARGO) test -q -p distme-engine als
	$(CARGO) test -q -p distme-engine --test service concurrent_als_matches_its_solo_run_bit_for_bit
	$(CARGO) test -q -p distme-cluster --test chaos blackout_window_losses_decode_from_parity_before_lineage

build:
	$(CARGO) build --release

bench:
	$(CARGO) bench --workspace

# Regenerates the tracked hot-path baseline (BENCH_hotpath.json at the repo
# root): GEMM GFLOP/s, codec GB/s, transport throughput, one CuboidMM job,
# the coded-replication section (parity encode GB/s, recovery bytes saved
# vs pure redelivery at 1% drop + one decommission), and the sparse section
# (SDDMM/SpMM GFLOP/s, ALS iterations/s).
bench-json:
	$(CARGO) run --release -q -p distme-bench --bin hotpath -- --coded --out BENCH_hotpath.json

# CI gate: the hotpath bench must run end to end and emit valid JSON (the
# binary self-checks the document before writing). Tiny shapes, debug build.
bench-smoke:
	$(CARGO) run -q -p distme-bench --bin hotpath -- --smoke --out target/BENCH_smoke.json

# CI gate: the wire-path hot loop must at least match the seed-style
# per-element loop (`roundtrip_speedup >= 1.0` for dense AND sparse) — the
# binary exits nonzero otherwise. Release build: comparing a CRC-fused bulk
# copy against the element loop is meaningless unoptimized.
codec-smoke:
	$(CARGO) run --release -q -p distme-bench --bin hotpath -- --codec-only --check-codec --out target/BENCH_codec.json
