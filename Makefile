# Development entry points. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci fmt lint test build bench

ci: fmt lint test

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test -q --workspace

build:
	$(CARGO) build --release

bench:
	$(CARGO) bench --workspace
