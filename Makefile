# Development entry points. `make ci` is the gate every change must pass.

CARGO ?= cargo

.PHONY: ci fmt lint test parity build bench

ci: fmt lint test parity

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test -q --workspace

# The sim/real byte-parity contract, runnable on its own: the simulator's
# communication model must match what the real executor's ledger measures,
# bit for bit.
parity:
	$(CARGO) test -q --test plan_parity

build:
	$(CARGO) build --release

bench:
	$(CARGO) bench --workspace
