//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Vendored because the build environment has no crates.io access. The shim
//! keeps the macro/group/bencher surface the workspace's benches use and
//! reports a simple mean wall-clock time per benchmark — enough to compare
//! orders of magnitude, with none of criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

/// Work-volume annotation for a benchmark (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs the measured closure and accumulates elapsed time.
pub struct Bencher {
    iterations: u32,
    elapsed_secs: f64,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed window.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed_secs = start.elapsed().as_secs_f64();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Annotates subsequent benchmarks with a work volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed_secs: 0.0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed_secs: 0.0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim only
    /// keeps the call for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed_secs / b.iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.1} MB/s", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / per_iter / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{rate}",
            self.name,
            id.0,
            per_iter * 1e3
        );
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Opaque value sink preventing the optimizer from deleting measured work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
