//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Vendored because the build environment has no crates.io access. Only the
//! slice of the API the block codec uses is provided: [`BytesMut`] as an
//! append-only builder with little-endian put methods, [`Bytes`] as a
//! cheaply-cloneable shared view with a read cursor, and the [`Buf`] /
//! [`BufMut`] traits carrying those accessors.

use std::sync::Arc;

/// Read-side accessors: consuming reads from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f64`, advancing the cursor.
    fn get_f64_le(&mut self) -> f64;

    /// Fills `dst` from the front of the buffer, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain, matching upstream.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write-side accessors: appending to the end of a buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);

    /// Appends a whole byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, reference-counted byte view with a read cursor.
///
/// Backed by an `Arc<Vec<u8>>` so that [`BytesMut::freeze`] and
/// [`Bytes::slice`] are zero-copy: the heap buffer a builder filled is the
/// buffer every view reads, at its original address. Decoded zero-copy
/// block views rely on that address stability — the payload they alias
/// stays where the encoder wrote it for as long as any clone is alive.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static slice without copying semantics concerns.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the unread view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view over `range` (relative to the current view start).
    ///
    /// # Panics
    /// Panics when the range exceeds the view, matching upstream.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the unread view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            // `Arc::new` moves the vector by pointer: the heap bytes are
            // not copied and keep their address (zero-copy freeze).
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }
}

/// Reading from a plain slice advances the slice itself (upstream impl).
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        f64::from_le_bytes(head.try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        *self = rest;
        dst.copy_from_slice(head);
    }
}

/// A growable byte builder.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates a builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Empties the builder, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends a whole byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(13);
        b.put_u8(0xAB);
        b.put_u32_le(0xDEADBEEF);
        b.put_f64_le(-1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u32_le(), 0xDEADBEEF);
        assert_eq!(bytes.get_f64_le(), -1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = bytes.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_ref(), &[2]);
        assert_eq!(bytes.len(), 6); // parent untouched
    }

    #[test]
    #[should_panic]
    fn oversized_slice_panics() {
        let bytes = Bytes::from(vec![0, 1, 2]);
        let _ = bytes.slice(0..4);
    }

    #[test]
    fn bulk_put_and_copy_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(&[1, 2, 3]);
        b.extend_from_slice(&[4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let mut bytes = b.freeze();
        let mut dst = [0u8; 4];
        bytes.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2, 3, 4]);
        assert_eq!(bytes.remaining(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[0u8; 40]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        b.reserve(128);
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn slice_buf_reads_advance_the_slice() {
        let data = [0xABu8, 0xEF, 0xBE, 0xAD, 0xDE, 9, 8, 7];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u32_le(), 0xDEADBEEF);
        assert_eq!(buf.remaining(), 3);
        let mut dst = [0u8; 2];
        buf.copy_to_slice(&mut dst);
        assert_eq!(dst, [9, 8]);
        assert_eq!(buf, &[7]);
    }

    #[test]
    fn slice_buf_f64_le_matches_bytes() {
        let mut b = BytesMut::with_capacity(8);
        b.put_f64_le(-2.75);
        let frozen = b.freeze();
        let mut s: &[u8] = frozen.as_ref();
        assert_eq!(s.get_f64_le(), -2.75);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn freeze_and_slice_are_zero_copy() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(&[1, 2, 3, 4]);
        let ptr = b.as_ref().as_ptr() as usize;
        let frozen = b.freeze();
        assert_eq!(
            frozen.as_ref().as_ptr() as usize,
            ptr,
            "freeze must not move the heap buffer"
        );
        let s = frozen.slice(1..3);
        assert_eq!(s.as_ref().as_ptr() as usize, ptr + 1);
    }

    #[test]
    fn reads_advance_but_clones_do_not_share_cursor() {
        let mut a = Bytes::from(vec![9, 8, 7]);
        let b = a.clone();
        assert_eq!(a.get_u8(), 9);
        assert_eq!(a.remaining(), 2);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}
