//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Vendored because the build environment has no crates.io access. The shim
//! keeps the `proptest!` surface the test suite uses — strategies built from
//! ranges, tuples, `Just`, `any`, `prop_map`, and `prop_oneof!` — and runs
//! each property as a fixed number of deterministically-seeded random cases.
//! There is no shrinking: a failing case panics with the generated inputs
//! reproducible from the (test name, case index) seed.

use std::ops::Range;

/// Per-property configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility with the real crate; shrinking in
    /// this shim is depth-limited rather than iteration-limited.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic splitmix64 case generator, seeded from the test's name and
/// the case index so every run explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one case of one property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `generate` draws one value for one test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The canonical strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `proptest::prelude` mirror.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("shim::bounds", 0);
        let s = (1usize..24, 0.5f64..2.0, 3u32..4);
        for _ in 0..500 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..24).contains(&a));
            assert!((0.5..2.0).contains(&b));
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let mut a = TestRng::for_case("shim::det", 7);
        let mut b = TestRng::for_case("shim::det", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("shim::det", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn oneof_hits_every_option() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_case("shim::oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: bindings, map, any.
        #[test]
        fn macro_roundtrip(
            n in 1u64..10,
            x in (0usize..5).prop_map(|v| v * 2),
            seed in any::<u64>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(x % 2, 0);
            let _ = seed;
        }
    }
}
