//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the `rand` 0.8 API it actually uses: `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`/integers, and
//! [`Rng::gen_range`] over half-open ranges. The generator is splitmix64 —
//! statistically fine for test-data generation, deterministic across
//! platforms, and *not* cryptographic (neither is the real `StdRng`'s use
//! here).

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i64 => u64, i32 => u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every entropy
/// source.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

/// `rand::prelude` mirror.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&y));
            let n = rng.gen_range(5usize..17);
            assert!((5..17).contains(&n));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
