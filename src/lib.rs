//! # DistME — a fast and elastic distributed matrix computation engine
//!
//! A from-scratch Rust reproduction of *DistME: A Fast and Elastic
//! Distributed Matrix Computation Engine using GPUs* (SIGMOD 2019):
//! **CuboidMM** — `(P, Q, R)`-cuboid partitioning of distributed matrix
//! multiplication with an exhaustive communication-cost optimizer under
//! per-task memory bounds — plus its GPU acceleration method
//! (`(P2, Q2, R2)`-subcuboid partitioning and the streaming schedule of
//! Algorithm 1), the engine around them, and every substrate the paper
//! depends on (a Spark-substitute distributed runtime and a simulated GPU).
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`matrix`] | `distme-matrix` | dense/CSR blocks, GEMM/SpMM/SpGEMM kernels, codec, generators |
//! | [`sim`] | `distme-sim` | virtual-time resource simulation (FIFO servers, slot pools, gauges) |
//! | [`cluster`] | `distme-cluster` | partitioners, shuffle accounting, real + simulated executors, failure modes |
//! | [`gpu`] | `distme-gpu` | simulated GPU device: PCI-E engines, streams, MPS, kernel model |
//! | [`core`] | `distme-core` | the paper's contribution: cuboids, optimizers, methods, Algorithm 1, SUMMA |
//! | [`engine`] | `distme-engine` | expression API, sessions, system profiles, GNMF, datasets |
//!
//! ## Quickstart
//!
//! ```
//! use distme::prelude::*;
//!
//! // Two 512 x 512 matrices in 128-blocks, multiplied CuboidMM-style over
//! // a thread-backed 4-node cluster, verified against the single-node
//! // reference.
//! let meta = MatrixMeta::dense(512, 512).with_block_size(128);
//! let a = MatrixGenerator::with_seed(1).generate(&meta).unwrap();
//! let b = MatrixGenerator::with_seed(2).generate(&meta).unwrap();
//!
//! let cluster = LocalCluster::new(ClusterConfig::laptop());
//! let (c, stats) = real_exec::multiply(&cluster, &a, &b, MulMethod::CuboidAuto).unwrap();
//!
//! let reference = a.multiply(&b).unwrap();
//! assert!(c.max_abs_diff(&reference).unwrap() < 1e-9);
//! assert!(stats.total_shuffle_bytes() > 0);
//! ```
//!
//! Paper-scale experiments run on the simulated cluster instead; see the
//! `distme-bench` binaries (`table4`, `fig6`…`fig9`, `table5`) and
//! EXPERIMENTS.md.

pub use distme_cluster as cluster;
pub use distme_core as core;
pub use distme_engine as engine;
pub use distme_gpu as gpu;
pub use distme_matrix as matrix;
pub use distme_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use distme_cluster::{
        Blackout, ClusterConfig, FaultPlan, FaultSpec, JobError, JobStats, LocalCluster, Phase,
        ReplicationPolicy, RetryPolicy, SimCluster,
    };
    pub use distme_cluster::{ElasticPolicy, TenantId};
    pub use distme_core::{
        real_exec, sim_exec, CuboidSpec, MatmulProblem, MulMethod, OptimizerConfig,
    };
    pub use distme_engine::{
        algorithms, expr::Expr, gnmf, GnmfConfig, JobService, JobSpec, JobStatus, RatingDataset,
        RealOps, RealSession, SimSession, SystemProfile,
    };
    pub use distme_matrix::{
        elementwise::EwOp, Block, BlockMatrix, CsrBlock, DenseBlock, MatrixGenerator, MatrixMeta,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let meta = MatrixMeta::dense(64, 64).with_block_size(32);
        let a = MatrixGenerator::with_seed(1).generate(&meta).unwrap();
        let b = MatrixGenerator::with_seed(2).generate(&meta).unwrap();
        let cluster = LocalCluster::new(ClusterConfig::laptop());
        let (c, _) = real_exec::multiply(&cluster, &a, &b, MulMethod::CuboidAuto).unwrap();
        assert!(c.max_abs_diff(&a.multiply(&b).unwrap()).unwrap() < 1e-9);
    }
}
